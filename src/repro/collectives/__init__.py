"""Collective communication: plans, schedules, analytic models, kernels.

* :mod:`repro.collectives.plan` — the :class:`CollectivePlan` IR: one
  source of truth for per-rank step lists, chunk routes and staggered
  production order, for flat-ring, hierarchical (multi-node), direct and
  all-to-all collectives.
* :mod:`repro.collectives.api` — collective types plus closed-form time /
  traffic models (used for the ideal configurations and the Figure 14
  "hardware" reference).
* :mod:`repro.collectives.schedule` — per-rank chunk schedules, now thin
  views over the plan layer.
* :mod:`repro.collectives.baseline` — the CU-driven collective kernels of
  today's GPUs (Figure 10a): the thing T3 replaces.
"""

from repro.collectives.api import (
    CollectiveOp,
    all_to_all_time,
    ring_ag_time,
    ring_ar_time,
    ring_rs_time,
    rs_with_nmc_time,
)
from repro.collectives.plan import (
    ChunkRoute,
    CollectivePlan,
    PlanStep,
    RankPlan,
    RouteKind,
    all_to_all_plan,
    direct_rs_plan,
    hierarchical_rs_plan,
    plan_for,
    ring_all_gather_plan,
    ring_production_order,
    ring_reduce_scatter_plan,
)
from repro.collectives.schedule import (
    RingStep,
    all_to_all_schedule,
    chunk_sizes,
    direct_rs_peers,
    ring_ag_schedule,
    ring_rs_schedule,
)
from repro.collectives.baseline import (
    CollectiveResult,
    PlannedReduceScatter,
    RingAllGather,
    RingAllReduce,
    RingReduceScatter,
)

__all__ = [
    "ChunkRoute",
    "CollectiveOp",
    "CollectivePlan",
    "CollectiveResult",
    "PlanStep",
    "PlannedReduceScatter",
    "RankPlan",
    "RingAllGather",
    "RingAllReduce",
    "RingReduceScatter",
    "RingStep",
    "RouteKind",
    "all_to_all_plan",
    "all_to_all_schedule",
    "all_to_all_time",
    "chunk_sizes",
    "direct_rs_peers",
    "direct_rs_plan",
    "hierarchical_rs_plan",
    "plan_for",
    "ring_ag_schedule",
    "ring_ag_time",
    "ring_all_gather_plan",
    "ring_ar_time",
    "ring_production_order",
    "ring_reduce_scatter_plan",
    "ring_rs_schedule",
    "ring_rs_time",
    "rs_with_nmc_time",
]
