"""Collective communication: schedules, analytic models, baseline kernels.

* :mod:`repro.collectives.api` — collective types plus closed-form time /
  traffic models (used for the ideal configurations and the Figure 14
  "hardware" reference).
* :mod:`repro.collectives.schedule` — per-rank chunk schedules for
  ring-RS / ring-AG / all-to-all / direct-RS.
* :mod:`repro.collectives.baseline` — the CU-driven collective kernels of
  today's GPUs (Figure 10a): the thing T3 replaces.
"""

from repro.collectives.api import (
    CollectiveOp,
    ring_ag_time,
    ring_ar_time,
    ring_rs_time,
    rs_with_nmc_time,
)
from repro.collectives.schedule import (
    RingStep,
    all_to_all_schedule,
    chunk_sizes,
    direct_rs_peers,
    ring_ag_schedule,
    ring_rs_schedule,
)
from repro.collectives.baseline import (
    CollectiveResult,
    RingAllGather,
    RingAllReduce,
    RingReduceScatter,
)

__all__ = [
    "CollectiveOp",
    "CollectiveResult",
    "RingAllGather",
    "RingAllReduce",
    "RingReduceScatter",
    "RingStep",
    "all_to_all_schedule",
    "chunk_sizes",
    "direct_rs_peers",
    "ring_ag_schedule",
    "ring_ag_time",
    "ring_ar_time",
    "ring_rs_schedule",
    "ring_rs_time",
    "rs_with_nmc_time",
]
