"""repro — a from-scratch Python reproduction of T3 (ASPLOS 2024).

T3 (Pati et al., "Transparent Tracking & Triggering for Fine-grained
Overlap of Compute & Collectives") co-designs hardware and software to
overlap tensor-parallel GEMMs with the serialized ring reduce-scatter that
follows them.  This package rebuilds the full evaluation stack:

* :mod:`repro.sim` — discrete-event simulation kernel,
* :mod:`repro.memory` — HBM, LLC, memory-controller arbitration, NMC,
* :mod:`repro.gpu` — CUs, tiled GEMM kernels, DMA engines,
* :mod:`repro.interconnect` — ring / fully-connected links,
* :mod:`repro.collectives` — ring-RS/AG/AR, direct-RS, all-to-all,
* :mod:`repro.t3` — the paper's contribution: Tracker, triggering,
  address-space configuration, fused GEMM-collective, MCA,
* :mod:`repro.models` — Transformer zoo and end-to-end projections,
* :mod:`repro.experiments` — one runner per paper table / figure.

Quickstart::

    from repro import table1_system, run_sublayer
    from repro.models import zoo

    system = table1_system(n_gpus=8)
    sublayer = zoo.megatron_gpt2().sublayer("FC-2", tp=8)
    result = run_sublayer(system, sublayer, config="T3-MCA")
    print(result.speedup_over_sequential)
"""

from repro.config import (
    ComputeConfig,
    FidelityConfig,
    GEMMKernelConfig,
    LinkConfig,
    MCAConfig,
    MemoryConfig,
    SystemConfig,
    TrackerConfig,
    table1_system,
)

__version__ = "1.0.0"

__all__ = [
    "ComputeConfig",
    "FidelityConfig",
    "GEMMKernelConfig",
    "LinkConfig",
    "MCAConfig",
    "MemoryConfig",
    "SystemConfig",
    "TrackerConfig",
    "table1_system",
    "run_sublayer",
    "__version__",
]


def run_sublayer(*args, **kwargs):
    """Lazy wrapper for :func:`repro.experiments.common.run_sublayer`.

    Imported lazily so that ``import repro`` stays cheap.
    """
    from repro.experiments.common import run_sublayer as _run

    return _run(*args, **kwargs)
