"""TraceQuery: an indexed, interval-algebra-backed store over one run.

The query layer turns a timeline — either a live
(:class:`~repro.analysis.trace.TraceRecorder`,
:class:`~repro.obs.MetricsRegistry`) pair or any saved Chrome/Perfetto
JSON — into something you can *interrogate* instead of just render:

* **span selection** by category / track / group / time window,
* **per-track summaries** (busy, gaps, utilization over the horizon),
* **span joins** — e.g. each DMA command joined to the link
  serializations and remote DRAM service it caused, matched by chunk id,
  endpoints and time containment,
* **critical-path extraction** — the backward walk through the
  GEMM -> Tracker-trigger -> DMA -> link -> DRAM dependency chain that
  explains where the finish time comes from.

Everything is held in nanoseconds.  Files written by
``TraceRecorder.save`` round-trip exactly (the exporter embeds exact ns
endpoints per event); foreign Chrome traces load through the same
``ts``/``dur`` fallback the shared loader implements.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.trace import TraceRecorder, TraceSpan, events_to_spans
from repro.obs import intervals as iv

#: span categories emitted as instant incident markers.
INCIDENT_CATEGORIES = ("fault", "resilience")

#: the category precedence the critical-path walk prefers when several
#: predecessors abut the same instant (producer before consumer).
CRITICAL_CHAIN = ("kernel", "dma", "link", "dram")

_LINK_TRACK = re.compile(r"^link\.(\d+)->(\d+)")
_DMA_TRACK = re.compile(r"^GPU(\d+)\.dma$")


@dataclass(frozen=True)
class TrackSummary:
    """Utilization/gap digest of one track."""

    track: str
    group: str
    n_spans: int
    busy_ns: float
    first_ns: float
    last_ns: float
    #: idle time between the track's first and last activity.
    gap_ns: float
    #: busy fraction of the query horizon (not just the track's window).
    utilization: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "track": self.track, "group": self.group,
            "n_spans": self.n_spans, "busy_ns": self.busy_ns,
            "first_ns": self.first_ns, "last_ns": self.last_ns,
            "gap_ns": self.gap_ns, "utilization": self.utilization,
        }


@dataclass(frozen=True)
class ChunkFlow:
    """One DMA command joined to the activity it caused."""

    dma: TraceSpan
    src_gpu: int
    dst_gpu: int
    chunk: Optional[int]
    links: Tuple[TraceSpan, ...]
    dram: Tuple[TraceSpan, ...]

    @property
    def link_ns(self) -> float:
        return iv.total(iv.merge(
            (s.start_ns, s.end_ns) for s in self.links))

    @property
    def dram_ns(self) -> float:
        return iv.total(iv.merge(
            (s.start_ns, s.end_ns) for s in self.dram))

    @property
    def trigger_to_wire_ns(self) -> float:
        """Latency from the DMA trigger to first link serialization (the
        local source read + queueing ahead of the wire)."""
        if not self.links:
            return 0.0
        return min(s.start_ns for s in self.links) - self.dma.start_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "command": self.dma.name, "src_gpu": self.src_gpu,
            "dst_gpu": self.dst_gpu, "chunk": self.chunk,
            "start_ns": self.dma.start_ns, "end_ns": self.dma.end_ns,
            "n_links": len(self.links), "n_dram": len(self.dram),
            "link_ns": self.link_ns, "dram_ns": self.dram_ns,
            "trigger_to_wire_ns": self.trigger_to_wire_ns,
        }


@dataclass(frozen=True)
class CriticalStep:
    """One hop of the backward critical-path walk."""

    span: TraceSpan
    #: idle time between this span's end and the successor's start (0 on
    #: an abutting chain; > 0 when the path crosses a real gap).
    slack_ns: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.span.name, "category": self.span.category,
            "track": self.span.track, "start_ns": self.span.start_ns,
            "end_ns": self.span.end_ns, "slack_ns": self.slack_ns,
        }


class TraceQuery:
    """Indexed query surface over one run's spans + counter tracks.

    Build with :meth:`from_recorder` (live pair) or :meth:`from_file`
    (saved trace).  ``counters`` maps track name ->
    ``[(t_ns, value), ...]``; ``registry_snapshot`` holds the aggregate
    :meth:`~repro.obs.MetricsRegistry.snapshot` when one was attached or
    embedded, which the analysis passes that need counters (arbiter
    deferrals) read.
    """

    def __init__(self, spans: Sequence[TraceSpan],
                 counters: Optional[Dict[str, List[Tuple[float, float]]]]
                 = None,
                 registry_snapshot: Optional[Dict[str, Any]] = None,
                 source: str = "<memory>"):
        self.spans: List[TraceSpan] = sorted(spans, key=TraceSpan.sort_key)
        self.counters = counters or {}
        self.registry_snapshot = registry_snapshot
        self.source = source
        self._by_category: Dict[str, List[TraceSpan]] = {}
        self._by_track: Dict[str, List[TraceSpan]] = {}
        for span in self.spans:
            self._by_category.setdefault(span.category, []).append(span)
            self._by_track.setdefault(span.track, []).append(span)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_recorder(cls, recorder: TraceRecorder,
                      registry=None) -> "TraceQuery":
        """Wrap a live recorder (and optionally its registry) — exact
        floats, no serialization in between."""
        counters: Dict[str, List[Tuple[float, float]]] = {}
        snapshot = None
        if registry is not None:
            for scope in registry.scopes():
                prefix = f"gpu{scope.gpu}" if scope.gpu >= 0 else "global"
                for name, gauge in sorted(scope.gauges.items()):
                    if gauge.samples:
                        counters[f"{prefix}.{scope.component}.{name}"] = \
                            list(gauge.samples)
                for name in scope.series_names():
                    series = scope.get_series(name)
                    if series is not None and len(series):
                        counters[f"{prefix}.{scope.component}.{name}"] = \
                            list(zip(series.times, series.values))
            snapshot = registry.snapshot()
        return cls(list(recorder.spans), counters, snapshot,
                   source="<live>")

    @classmethod
    def from_file(cls, path: str) -> "TraceQuery":
        """Load a saved Chrome/Perfetto JSON (ours or foreign)."""
        with open(path) as handle:
            payload = json.load(handle)
        events = payload if isinstance(payload, list) \
            else payload.get("traceEvents", [])
        counters: Dict[str, List[Tuple[float, float]]] = {}
        for event in events:
            if event.get("ph") != "C":
                continue
            args = event.get("args") or {}
            t_ns = args.get("t_ns")
            if t_ns is None:
                t_ns = float(event.get("ts", 0.0)) * 1e3
            counters.setdefault(str(event.get("name", "")), []).append(
                (float(t_ns), float(args.get("value", 0.0))))
        snapshot = None
        if isinstance(payload, dict):
            snapshot = payload.get("t3", {}).get("registry")
        return cls(events_to_spans(events), counters, snapshot,
                   source=str(path))

    @classmethod
    def from_events(cls, events: Sequence[Dict[str, Any]]) -> "TraceQuery":
        return cls(events_to_spans(events))

    # -- basic introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def categories(self) -> List[str]:
        return sorted(self._by_category)

    def tracks(self, group: Optional[str] = None) -> List[str]:
        if group is None:
            return sorted(self._by_track)
        return sorted({s.track for s in self.spans if s.group == group})

    def groups(self) -> List[str]:
        return sorted({s.group for s in self.spans})

    def counter_tracks(self) -> List[str]:
        return sorted(self.counters)

    def bounds(self) -> Tuple[float, float]:
        """(first, last) timestamp over spans *and* counter samples."""
        lo, hi = float("inf"), float("-inf")
        if self.spans:
            lo = min(lo, min(s.start_ns for s in self.spans))
            hi = max(hi, max(s.end_ns for s in self.spans))
        for samples in self.counters.values():
            if samples:
                lo = min(lo, samples[0][0])
                hi = max(hi, samples[-1][0])
        if lo > hi:
            return (0.0, 0.0)
        return (lo, hi)

    @property
    def horizon_ns(self) -> float:
        return self.bounds()[1]

    # -- selection ------------------------------------------------------------

    def select(self, category: Optional[str] = None,
               track: Optional[str] = None,
               group: Optional[str] = None,
               window: Optional[Tuple[float, float]] = None,
               name_contains: Optional[str] = None,
               where: Optional[Callable[[TraceSpan], bool]] = None,
               ) -> List[TraceSpan]:
        """Spans matching every given filter, in timeline order.

        ``window=(lo, hi)`` keeps spans *overlapping* the window (an
        instant at ``lo`` counts).  ``where`` is an arbitrary predicate,
        e.g. ``lambda s: (s.args or {}).get("chunk") == 3``.
        """
        if category is not None:
            pool: Sequence[TraceSpan] = self._by_category.get(category, [])
        elif track is not None:
            pool = self._by_track.get(track, [])
        else:
            pool = self.spans
        out: List[TraceSpan] = []
        for span in pool:
            if track is not None and span.track != track:
                continue
            if group is not None and span.group != group:
                continue
            if name_contains is not None and name_contains not in span.name:
                continue
            if window is not None:
                lo, hi = window
                inside = (span.start_ns < hi and span.end_ns > lo) or \
                    (span.start_ns == span.end_ns
                     and lo <= span.start_ns <= hi)
                if not inside:
                    continue
            if where is not None and not where(span):
                continue
            out.append(span)
        return out

    def intervals(self, **filters) -> List[iv.Interval]:
        """Merged (sorted, disjoint) busy intervals of a selection."""
        return iv.merge((s.start_ns, s.end_ns)
                        for s in self.select(**filters))

    def incidents(self) -> List[TraceSpan]:
        """Fault/resilience markers, in timeline order."""
        out: List[TraceSpan] = []
        for category in INCIDENT_CATEGORIES:
            out.extend(self._by_category.get(category, []))
        return sorted(out, key=TraceSpan.sort_key)

    # -- summaries ------------------------------------------------------------

    def track_summary(self, track: str) -> TrackSummary:
        spans = self._by_track.get(track, [])
        if not spans:
            raise KeyError(f"no spans on track {track!r}")
        merged = iv.merge((s.start_ns, s.end_ns) for s in spans)
        busy = iv.total(merged)
        first = min(s.start_ns for s in spans)
        last = max(s.end_ns for s in spans)
        horizon = self.horizon_ns
        return TrackSummary(
            track=track, group=spans[0].group, n_spans=len(spans),
            busy_ns=busy, first_ns=first, last_ns=last,
            gap_ns=(last - first) - busy,
            utilization=busy / horizon if horizon > 0 else 0.0)

    def summaries(self, group: Optional[str] = None) -> List[TrackSummary]:
        return [self.track_summary(track) for track in self.tracks(group)]

    def utilization(self, **filters) -> float:
        """Busy fraction of the horizon for a selection."""
        horizon = self.horizon_ns
        if horizon <= 0:
            return 0.0
        return iv.total(self.intervals(**filters)) / horizon

    def gaps(self, track: str) -> List[iv.Interval]:
        """Idle intervals between a track's first and last activity."""
        spans = self._by_track.get(track, [])
        if not spans:
            return []
        merged = iv.merge((s.start_ns, s.end_ns) for s in spans)
        lo = merged[0][0]
        hi = merged[-1][1]
        return iv.subtract([(lo, hi)], merged)

    # -- joins ----------------------------------------------------------------

    def join(self, parents: Sequence[TraceSpan],
             children: Sequence[TraceSpan],
             key: Optional[Callable[[TraceSpan], Any]] = None,
             slack_ns: float = 0.0,
             ) -> List[Tuple[TraceSpan, List[TraceSpan]]]:
        """Attach each child to every parent whose interval contains it.

        ``key`` (applied to both sides) restricts matches to equal keys —
        e.g. ``lambda s: (s.args or {}).get("chunk")`` joins by chunk id;
        a ``None`` key on either side never matches.  ``slack_ns`` widens
        the containment test at both ends.
        """
        out = [(parent, []) for parent in parents]
        for child in children:
            child_key = key(child) if key is not None else None
            for parent, matched in out:
                if key is not None:
                    parent_key = key(parent)
                    if parent_key is None or parent_key != child_key:
                        continue
                if (child.start_ns >= parent.start_ns - slack_ns
                        and child.end_ns <= parent.end_ns + slack_ns):
                    matched.append(child)
        return [(parent, matched) for parent, matched in out]

    def chunk_flows(self) -> List[ChunkFlow]:
        """Join every DMA command to its link serializations and remote
        DRAM service — the trigger -> wire -> memory chain per chunk.

        Links are matched by the directed ``link.<src>-><dst>`` track and
        time containment; DRAM service by destination GPU, comm stream,
        chunk id (when recorded) and time containment.  Traces saved
        without ``record_dram`` simply produce empty ``dram`` legs.
        """
        flows: List[ChunkFlow] = []
        links = self._by_category.get("link", [])
        dram = self._by_category.get("dram", [])
        for span in self._by_category.get("dma", []):
            track_match = _DMA_TRACK.match(span.track)
            src = int(track_match.group(1)) if track_match else -1
            args = span.args or {}
            dst = args.get("dst")
            if dst is None:
                name_match = re.search(r"->gpu(\d+)$", span.name)
                dst = int(name_match.group(1)) if name_match else -1
            chunk = args.get("chunk")
            own_links = []
            for link in links:
                ends = _LINK_TRACK.match(link.track)
                if ends is None or int(ends.group(1)) != src \
                        or int(ends.group(2)) != dst:
                    continue
                if link.start_ns >= span.start_ns \
                        and link.end_ns <= span.end_ns:
                    own_links.append(link)
            own_dram = []
            for service in dram:
                sargs = service.args or {}
                if sargs.get("stream") != "comm":
                    continue
                if not service.track.startswith(f"gpu{dst}."):
                    continue
                if chunk is not None and sargs.get("chunk") is not None \
                        and sargs.get("chunk") != chunk:
                    continue
                if service.start_ns >= span.start_ns \
                        and service.end_ns <= span.end_ns:
                    own_dram.append(service)
            flows.append(ChunkFlow(
                dma=span, src_gpu=src, dst_gpu=int(dst), chunk=chunk,
                links=tuple(own_links), dram=tuple(own_dram)))
        return flows

    # -- critical path --------------------------------------------------------

    def critical_path(self,
                      categories: Sequence[str] = CRITICAL_CHAIN,
                      max_steps: int = 10_000) -> List[CriticalStep]:
        """Backward walk from the last-ending span to the timeline start.

        At each hop the walk prefers a span that *abuts* the current one
        (ends exactly where it starts — the discrete-event simulator
        chains dependencies contiguously), breaking ties by the
        ``categories`` precedence (producers before consumers) and then
        by earliest start (longest span).  When nothing abuts, it falls
        back to the latest span ending strictly before the current start
        and records the crossed idle time as ``slack_ns``.  Returned in
        chronological order.
        """
        pool = [s for s in self.spans if s.category in categories
                and s.end_ns > s.start_ns]
        if not pool:
            return []
        rank = {category: index
                for index, category in enumerate(categories)}
        by_end = sorted(pool, key=lambda s: s.end_ns)
        current = max(pool, key=lambda s: (s.end_ns, s.end_ns - s.start_ns))
        steps: List[CriticalStep] = [CriticalStep(current, 0.0)]
        for _ in range(max_steps):
            cursor = current.start_ns
            abutting = [s for s in pool
                        if s.end_ns == cursor and s is not current]
            if abutting:
                current = min(
                    abutting,
                    key=lambda s: (rank.get(s.category, len(rank)),
                                   s.start_ns))
                steps.append(CriticalStep(current, 0.0))
                continue
            predecessors = [s for s in by_end if s.end_ns < cursor]
            if not predecessors:
                break
            latest_end = predecessors[-1].end_ns
            candidates = [s for s in predecessors if s.end_ns == latest_end]
            current = min(
                candidates,
                key=lambda s: (rank.get(s.category, len(rank)), s.start_ns))
            steps.append(CriticalStep(current, cursor - latest_end))
        return list(reversed(steps))

    def critical_path_breakdown(
            self, categories: Sequence[str] = CRITICAL_CHAIN,
    ) -> Dict[str, float]:
        """Time on the critical path per category (plus ``slack``)."""
        out: Dict[str, float] = {}
        for step in self.critical_path(categories):
            out[step.span.category] = (out.get(step.span.category, 0.0)
                                       + step.span.duration_ns)
            if step.slack_ns:
                out["slack"] = out.get("slack", 0.0) + step.slack_ns
        return out


@dataclass
class _CountersView:
    """Helper: counter samples for tracks matching a regex."""

    query: TraceQuery
    pattern: str
    tracks: Dict[str, List[Tuple[float, float]]] = field(init=False)

    def __post_init__(self) -> None:
        regex = re.compile(self.pattern)
        self.tracks = {name: samples
                       for name, samples in self.query.counters.items()
                       if regex.search(name)}

    def values(self) -> List[float]:
        return [value for samples in self.tracks.values()
                for _t, value in samples]


def counter_view(query: TraceQuery, pattern: str) -> _CountersView:
    """Counter tracks whose name matches ``pattern`` (a regex)."""
    return _CountersView(query, pattern)
