"""``runner trace`` — query a saved trace and run analysis passes.

Examples::

    python -m repro.experiments.runner trace results/scaleout.trace.json
    ... trace run.json --pass decomposition --pass critical-path
    ... trace run.json --json report.json          # machine-readable
    ... trace run.json --timeline --width 120      # headless timeline
    ... trace run.json --tui                       # interactive curses
    ... trace run.json --window 0:250 --timeline   # zoom (us)

Also runnable directly: ``python -m repro.trace.cli <trace.json>``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Tuple

from repro.trace.passes import PASSES, run_passes
from repro.trace.query import TraceQuery
from repro.trace.tui import render_timeline


def _parse_window(text: str) -> Tuple[float, float]:
    """``LO:HI`` in microseconds -> (lo_ns, hi_ns)."""
    try:
        lo_text, hi_text = text.split(":", 1)
        lo, hi = float(lo_text) * 1e3, float(hi_text) * 1e3
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"window must be LO:HI in us, got {text!r}")
    if hi <= lo:
        raise argparse.ArgumentTypeError(
            f"window must satisfy LO < HI, got {text!r}")
    return lo, hi


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="runner trace",
        description="Query a saved simulation trace: analysis passes, "
                    "JSON reports, and a terminal timeline.")
    parser.add_argument("trace", nargs="?",
                        help="path to a saved Chrome/Perfetto trace JSON "
                             "(e.g. from a runner --trace flag)")
    parser.add_argument("--pass", dest="passes", action="append",
                        metavar="NAME", default=None,
                        help="analysis pass to run (repeatable; default: "
                             "all). See --list-passes.")
    parser.add_argument("--list-passes", action="store_true",
                        help="list available analysis passes and exit")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write the pass results as JSON "
                             "('-' for stdout)")
    parser.add_argument("--timeline", action="store_true",
                        help="render the headless terminal timeline "
                             "after the passes")
    parser.add_argument("--tui", action="store_true",
                        help="open the interactive curses timeline")
    parser.add_argument("--width", type=int, default=100,
                        help="timeline width in columns (default 100)")
    parser.add_argument("--window", type=_parse_window, default=None,
                        metavar="LO:HI",
                        help="restrict the timeline to LO:HI microseconds")
    parser.add_argument("--tracks", metavar="SUBSTR", default=None,
                        help="only show tracks whose name contains SUBSTR "
                             "(timeline views)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_passes:
        for name, fn in PASSES.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"{name:<18}{doc[0] if doc else ''}")
        return 0
    if options.trace is None:
        parser.error("a trace file is required (or --list-passes)")
    path = pathlib.Path(options.trace)
    if not path.exists():
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2
    query = TraceQuery.from_file(str(path))
    try:
        results = run_passes(query, options.passes)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    blocks = [result.text for result in results]
    print("\n\n".join(blocks))
    if options.json:
        payload = {"trace": str(path),
                   "passes": [result.to_dict() for result in results]}
        text = json.dumps(payload, indent=2, sort_keys=True)
        if options.json == "-":
            print(text)
        else:
            target = pathlib.Path(options.json)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(text + "\n")
            print(f"\nwrote {options.json}")
    tracks = None
    if options.tracks is not None:
        tracks = [name for name in query.tracks()
                  if options.tracks in name]
        if not tracks:
            print(f"error: no tracks match {options.tracks!r}",
                  file=sys.stderr)
            return 2
    if options.timeline:
        print()
        print(render_timeline(query, width=options.width,
                              window=options.window, tracks=tracks))
    if options.tui:
        from repro.trace.tui import interactive
        interactive(query)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
