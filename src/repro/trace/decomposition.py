"""Post-hoc overlap decomposition: the live profiler's math on a trace.

:mod:`repro.obs.profiler` decomposes a run into compute / hidden /
exposed time from a live :class:`~repro.obs.MetricsRegistry`.  This
module computes the *same quantities from the trace spans alone*, so any
saved Chrome JSON — including one reloaded months after the run — yields
the identical numbers.

The equivalence is exact, not approximate: the simulator records every
relevant interval into both sinks at the same code site with the same
floats (kernel spans in ``gpu.py``, link serialization in
``primitives.py``, comm-stream DRAM service in ``dram.py``), and the
exporter round-trips exact nanosecond endpoints through ``args``.  The
``scripts/smoke_trace.py`` gate enforces bit-for-bit equality of
``compute_ns`` / ``comm_ns`` / ``hidden_ns`` / ``exposed_ns`` between
:func:`repro.obs.profiler.decompose` on the live registry and
:func:`decompose_query` on the saved file.

Category mapping (trace span -> profiler scope):

========  ==========================  =================================
quantity  registry source             trace source
========  ==========================  =================================
compute   ``compute`` scope "kernel"  category ``"kernel"``
comm      ``link`` scope spans        category ``"link"``
comm      ``dram`` "comm_service"     category ``"dram"``,
                                      ``args.stream == "comm"``
========  ==========================  =================================

Decomposition-grade traces therefore need
``TraceRecorder(record_dram=True)`` — without DRAM spans the comm set is
missing its memory-service leg and the numbers diverge from the live
profiler (``has_dram_spans`` lets callers detect this).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs import intervals as iv
from repro.obs.profiler import (OverlapBreakdown, PlanStageSpan,
                                StageAttribution)
from repro.trace.query import TraceQuery


def compute_intervals(query: TraceQuery) -> List[iv.Interval]:
    """Machine-level kernel-execution intervals (merged)."""
    return query.intervals(category="kernel")


def comm_intervals(query: TraceQuery) -> List[iv.Interval]:
    """Machine-level communication intervals: link serialization plus
    comm-stream DRAM service, mirroring ``obs.profiler.comm_spans``."""
    spans = [(s.start_ns, s.end_ns) for s in query.select(category="link")]
    spans.extend(
        (s.start_ns, s.end_ns)
        for s in query.select(
            category="dram",
            where=lambda s: (s.args or {}).get("stream") == "comm"))
    return iv.merge(spans)


def has_dram_spans(query: TraceQuery) -> bool:
    """True when the trace carries comm-stream DRAM service spans (was
    recorded with ``record_dram=True``) — required for decompositions
    that match the live profiler."""
    return any((s.args or {}).get("stream") == "comm"
               for s in query.select(category="dram"))


def decompose_query(query: TraceQuery,
                    total_ns: Optional[float] = None) -> OverlapBreakdown:
    """The live profiler's :func:`~repro.obs.profiler.decompose`, post-hoc.

    ``total_ns`` defaults to the trace horizon (last event end), which
    can differ from the live ``registry.end_time()`` when counter tracks
    extend past the last span; the four span-derived quantities are
    always identical to the live run's.
    """
    compute = compute_intervals(query)
    comm = comm_intervals(query)
    hidden = iv.intersect(comm, compute)
    exposed = iv.subtract(comm, compute)
    return OverlapBreakdown(
        total_ns=query.horizon_ns if total_ns is None else total_ns,
        compute_ns=iv.total(compute),
        comm_ns=iv.total(comm),
        hidden_ns=iv.total(hidden),
        exposed_ns=iv.total(exposed),
    )


def stage_boundaries_query(query: TraceQuery) -> List[float]:
    """Per-GEMM-stage critical-path boundaries from the ``stage_end``
    counter tracks (``gpu<N>.gemm.stage_end``): the slowest GPU's end
    per stage, mirroring ``obs.profiler.stage_boundaries``."""
    per_stage: Dict[int, float] = {}
    for track, samples in query.counters.items():
        if not track.endswith(".gemm.stage_end"):
            continue
        for when, stage in samples:
            index = int(stage)
            per_stage[index] = max(per_stage.get(index, 0.0), when)
    return [per_stage[index] for index in sorted(per_stage)]


def attribute_stages_query(query: TraceQuery) -> List[StageAttribution]:
    """Split each GEMM-stage window into compute / hidden / exposed,
    post-hoc (``obs.profiler.attribute_stages`` on a trace)."""
    boundaries = stage_boundaries_query(query)
    if not boundaries:
        return []
    compute = compute_intervals(query)
    comm = comm_intervals(query)
    hidden = iv.intersect(comm, compute)
    exposed = iv.subtract(comm, compute)
    window_start = compute[0][0] if compute else 0.0
    attributions: List[StageAttribution] = []
    for stage, end in enumerate(boundaries):
        attributions.append(StageAttribution(
            stage=stage, start_ns=window_start, end_ns=end,
            compute_ns=iv.total(iv.clip(compute, window_start, end)),
            hidden_ns=iv.total(iv.clip(hidden, window_start, end)),
            exposed_ns=iv.total(iv.clip(exposed, window_start, end)),
        ))
        window_start = end
    return attributions


def attribute_plan_stages_query(query: TraceQuery,
                                stage_order: Optional[List[str]] = None,
                                ) -> List[PlanStageSpan]:
    """Per-collective-plan-phase overlap attribution, post-hoc.

    DMA spans carry the plan phase their route belongs to in
    ``args.stage`` (mirroring the ``stage.<name>`` obs spans the live
    ``attribute_plan_stages`` reads); this groups the machine-wide DMA
    activity per phase and splits it into hidden / exposed time.
    """
    per_stage: Dict[str, List[iv.Interval]] = {}
    for span in query.select(category="dma"):
        stage = (span.args or {}).get("stage")
        if stage is None:
            continue
        per_stage.setdefault(str(stage), []).append(
            (span.start_ns, span.end_ns))
    if not per_stage:
        return []
    compute = compute_intervals(query)
    names = [s for s in (stage_order or []) if s in per_stage]
    names += sorted((s for s in per_stage if s not in names),
                    key=lambda s: min(start for start, _ in per_stage[s]))
    result: List[PlanStageSpan] = []
    for stage in names:
        spans = iv.merge(per_stage[stage])
        hidden = iv.intersect(spans, compute)
        result.append(PlanStageSpan(
            stage=stage,
            comm_ns=iv.total(spans),
            hidden_ns=iv.total(hidden),
            exposed_ns=iv.total(spans) - iv.total(hidden),
            start_ns=spans[0][0],
            end_ns=spans[-1][1],
        ))
    return result
