"""Terminal timeline viewer for simulation traces.

Two layers:

* :func:`render_timeline` — a **pure** renderer producing a string:
  one row per track, Unicode block characters shading per-column busy
  fraction, ``!``/``*`` markers for fault/resilience incidents, plus a
  time axis and a utilization gutter.  Headless-safe (the smoke gate and
  tests call it directly), and what ``runner trace --timeline`` prints.
* :func:`interactive` — a curses wrapper adding pan (``h``/``l`` or
  arrows), zoom (``+``/``-``), track scrolling (``j``/``k``), reset
  (``0``) and quit (``q``).  Import of ``curses`` happens inside the
  function so platforms without it can still use the renderer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.obs import intervals as iv
from repro.trace.query import TraceQuery

#: shading ramp: index by ceil(busy_fraction * 8).
_BLOCKS = " ▁▂▃▄▅▆▇█"

#: marker characters per incident category (override the shading).
_MARKERS = {"fault": "!", "resilience": "*"}


def _shade(fraction: float) -> str:
    if fraction <= 0.0:
        return _BLOCKS[0]
    index = min(len(_BLOCKS) - 1, max(1, round(fraction * 8)))
    return _BLOCKS[index]


def _axis(lo: float, hi: float, columns: int) -> str:
    """A time ruler in microseconds with ~4 labelled ticks."""
    row = [" "] * columns
    ticks = max(2, min(5, columns // 20))
    for tick in range(ticks):
        position = tick * (columns - 1) // (ticks - 1)
        value = lo + (hi - lo) * position / max(1, columns - 1)
        label = f"{value / 1e3:.1f}"
        start = min(position, columns - len(label))
        for offset, char in enumerate(label):
            row[start + offset] = char
    return "".join(row)


def render_timeline(query: TraceQuery,
                    width: int = 100,
                    window: Optional[Tuple[float, float]] = None,
                    tracks: Optional[Sequence[str]] = None,
                    track_offset: int = 0,
                    max_tracks: Optional[int] = None,
                    label_width: int = 24) -> str:
    """Render the trace as a fixed-width terminal timeline.

    ``window`` is a ``(lo_ns, hi_ns)`` view (default: full trace);
    ``tracks`` restricts and orders the rows (default: every span
    track, sorted); ``track_offset``/``max_tracks`` page vertically for
    the interactive viewer.  Each column shades the track's busy
    fraction over that column's time slice; incident markers win over
    shading so faults stay visible at any zoom.
    """
    lo, hi = window if window is not None else query.bounds()
    if hi <= lo:
        hi = lo + 1.0
    names = list(tracks) if tracks is not None else query.tracks()
    names = [name for name in names if name in set(query.tracks())]
    total_tracks = len(names)
    if max_tracks is not None:
        names = names[track_offset:track_offset + max_tracks]
    columns = max(10, width - label_width - 10)
    step = (hi - lo) / columns
    lines: List[str] = []
    title = (f"{query.source}  [{lo / 1e3:.1f}us .. {hi / 1e3:.1f}us]"
             f"  {columns} cols x {step / 1e3:.3f}us")
    lines.append(title)
    incidents = [(mark.start_ns, mark.track, mark.category)
                 for mark in query.incidents()]
    for name in names:
        merged = query.intervals(track=name)
        clipped = iv.clip(merged, lo, hi)
        row = []
        for column in range(columns):
            slice_lo = lo + column * step
            slice_hi = slice_lo + step
            busy = iv.total(iv.clip(clipped, slice_lo, slice_hi))
            row.append(_shade(busy / step if step > 0 else 0.0))
        for at, track, category in incidents:
            if track != name or not (lo <= at <= hi):
                continue
            column = min(columns - 1, int((at - lo) / step)) \
                if step > 0 else 0
            row[column] = _MARKERS.get(category, "!")
        busy_total = iv.total(clipped)
        utilization = busy_total / (hi - lo)
        label = name if len(name) <= label_width \
            else name[:label_width - 1] + "…"
        lines.append(f"{label:<{label_width}}|{''.join(row)}|"
                     f"{100 * utilization:>5.1f}%")
    lines.append(" " * label_width + " "
                 + _axis(lo, hi, columns) + " (us)")
    if max_tracks is not None and total_tracks > len(names):
        lines.append(f"[tracks {track_offset + 1}-"
                     f"{track_offset + len(names)} of {total_tracks}]")
    if incidents:
        lines.append("markers: ! fault   * resilience")
    return "\n".join(lines)


def interactive(query: TraceQuery) -> None:  # pragma: no cover - curses
    """Curses viewer over :func:`render_timeline` (pan/zoom/scroll)."""
    import curses

    full_lo, full_hi = query.bounds()
    if full_hi <= full_lo:
        full_hi = full_lo + 1.0

    def _loop(screen) -> None:
        curses.use_default_colors()
        screen.keypad(True)
        lo, hi = full_lo, full_hi
        offset = 0
        while True:
            height, width = screen.getmaxyx()
            max_tracks = max(1, height - 5)
            frame = render_timeline(
                query, width=width - 1, window=(lo, hi),
                track_offset=offset, max_tracks=max_tracks)
            screen.erase()
            for row, line in enumerate(frame.splitlines()):
                if row >= height - 1:
                    break
                try:
                    screen.addstr(row, 0, line[:width - 1])
                except curses.error:
                    pass
            hint = "h/l pan  +/- zoom  j/k tracks  0 reset  q quit"
            try:
                screen.addstr(height - 1, 0, hint[:width - 1],
                              curses.A_REVERSE)
            except curses.error:
                pass
            screen.refresh()
            key = screen.getch()
            span = hi - lo
            if key in (ord("q"), 27):
                return
            elif key in (ord("l"), curses.KEY_RIGHT):
                lo += span / 4
                hi += span / 4
            elif key in (ord("h"), curses.KEY_LEFT):
                lo -= span / 4
                hi -= span / 4
            elif key in (ord("+"), ord("=")):
                center = (lo + hi) / 2
                lo = center - span / 4
                hi = center + span / 4
            elif key == ord("-"):
                center = (lo + hi) / 2
                lo = center - span
                hi = center + span
            elif key in (ord("j"), curses.KEY_DOWN):
                offset = min(offset + 1,
                             max(0, len(query.tracks()) - 1))
            elif key in (ord("k"), curses.KEY_UP):
                offset = max(0, offset - 1)
            elif key == ord("0"):
                lo, hi = full_lo, full_hi
                offset = 0

    curses.wrapper(_loop)
