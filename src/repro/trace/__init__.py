"""Trace intelligence: query, analyze and view saved simulation runs.

The package turns any saved Chrome/Perfetto trace (or a live
``TraceRecorder`` + ``MetricsRegistry`` pair) into an explorable
artifact:

* :class:`TraceQuery` — indexed, interval-algebra-backed span store
  (filters, joins, per-track summaries, critical-path extraction),
* :mod:`repro.trace.decomposition` — the live overlap profiler's
  compute/hidden/exposed math, post-hoc and bit-identical,
* :mod:`repro.trace.passes` — built-in analysis passes
  (``runner trace --list-passes``),
* :mod:`repro.trace.tui` — the terminal timeline renderer/viewer,
* :mod:`repro.trace.cli` — the ``runner trace`` subcommand.

See ``docs/tracing.md`` for the format contract and a tour.
"""

from repro.trace.decomposition import (attribute_plan_stages_query,
                                       attribute_stages_query,
                                       comm_intervals, compute_intervals,
                                       decompose_query, has_dram_spans)
from repro.trace.passes import PASSES, PassResult, run_passes
from repro.trace.query import (ChunkFlow, CriticalStep, TraceQuery,
                               TrackSummary, counter_view)
from repro.trace.tui import render_timeline

__all__ = [
    "TraceQuery", "TrackSummary", "ChunkFlow", "CriticalStep",
    "counter_view",
    "compute_intervals", "comm_intervals", "decompose_query",
    "has_dram_spans", "attribute_stages_query",
    "attribute_plan_stages_query",
    "PASSES", "PassResult", "run_passes",
    "render_timeline",
]
