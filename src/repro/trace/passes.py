"""Built-in analysis passes over a :class:`~repro.trace.TraceQuery`.

Each pass is a pure function ``TraceQuery -> PassResult`` producing both
a machine-readable dict (for ``runner trace --json``) and a rendered
text block (for the terminal report).  The registry:

========================  =============================================
pass                      what it answers
========================  =============================================
``summary``               what's in this trace — horizon, span counts,
                          per-track utilization
``decomposition``         the paper's compute / hidden / exposed split,
                          post-hoc (must equal the live profiler)
``stages``                where exposure happens — per-GEMM-stage and
                          per-collective-plan-phase attribution
``chunk-flows``           DMA trigger -> link -> DRAM joins per chunk,
                          with trigger-to-wire latency stats
``trigger-latency``       the Tracker's trigger-latency distribution
``deferrals``             MCA arbiter deferral attribution (who held
                          comm back, and why)
``incidents``             fault / resilience events overlaid on what
                          the machine was doing at that instant
``critical-path``         the backward GEMM->DMA->link->DRAM walk that
                          explains the finish time
``policy-decisions``      overlap-policy decision instants (threshold
                          retunes, pacing, eagerness) joined against
                          the arbiter's gate outcomes
========================  =============================================

Passes degrade gracefully: one that needs data the trace lacks (e.g.
``deferrals`` without an embedded registry snapshot) reports *why* in
its text instead of raising, so ``--pass all`` works on any file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.trace import decomposition as dec
from repro.trace.query import TraceQuery, counter_view


@dataclass
class PassResult:
    """One pass's output: ``data`` for JSON, ``text`` for the terminal."""

    name: str
    data: Dict[str, Any]
    text: str

    def to_dict(self) -> Dict[str, Any]:
        return {"pass": self.name, **self.data}


def _us(ns: float) -> str:
    return f"{ns / 1e3:.3f}us"


def _distribution(values: List[float]) -> Dict[str, float]:
    ordered = sorted(values)
    n = len(ordered)

    def pct(q: float) -> float:
        return ordered[min(n - 1, int(q * n))]

    return {
        "count": n,
        "min": ordered[0],
        "p50": pct(0.50),
        "p90": pct(0.90),
        "p99": pct(0.99),
        "max": ordered[-1],
        "mean": sum(ordered) / n,
    }


# -- passes -------------------------------------------------------------------


def pass_summary(query: TraceQuery) -> PassResult:
    lo, hi = query.bounds()
    categories = {category: len(query.select(category=category))
                  for category in query.categories()}
    summaries = [s.to_dict() for s in query.summaries()]
    lines = [f"trace: {query.source}",
             f"  window: {_us(lo)} .. {_us(hi)}  "
             f"({len(query)} spans, {len(query.counters)} counter tracks)",
             "  spans by category: " + ", ".join(
                 f"{category}={count}"
                 for category, count in sorted(categories.items()))]
    lines.append(f"  {'track':<28}{'spans':>7}{'busy':>12}{'util':>8}")
    for summary in summaries:
        lines.append(f"  {summary['track']:<28}{summary['n_spans']:>7}"
                     f"{_us(summary['busy_ns']):>12}"
                     f"{100 * summary['utilization']:>7.1f}%")
    return PassResult("summary", {
        "source": query.source, "start_ns": lo, "end_ns": hi,
        "n_spans": len(query), "n_counter_tracks": len(query.counters),
        "categories": categories, "tracks": summaries,
    }, "\n".join(lines))


def pass_decomposition(query: TraceQuery) -> PassResult:
    breakdown = dec.decompose_query(query)
    data = breakdown.to_dict()
    data["has_dram_spans"] = dec.has_dram_spans(query)
    lines = ["overlap decomposition (post-hoc):",
             f"  compute {_us(breakdown.compute_ns)}  "
             f"comm {_us(breakdown.comm_ns)}  "
             f"hidden {_us(breakdown.hidden_ns)}  "
             f"exposed {_us(breakdown.exposed_ns)}",
             f"  overlap efficiency "
             f"{100 * breakdown.overlap_efficiency:.1f}% of comm hidden"]
    if not data["has_dram_spans"]:
        lines.append("  note: no comm-stream DRAM spans in this trace "
                     "(recorded without record_dram=True); numbers only "
                     "cover link serialization")
    return PassResult("decomposition", data, "\n".join(lines))


def pass_stages(query: TraceQuery) -> PassResult:
    gemm = dec.attribute_stages_query(query)
    plan = dec.attribute_plan_stages_query(query)
    data = {"gemm_stages": [stage.to_dict() for stage in gemm],
            "plan_stages": [stage.to_dict() for stage in plan]}
    lines: List[str] = []
    if gemm:
        lines.append("per-GEMM-stage attribution:")
        for stage in gemm:
            lines.append(
                f"  stage {stage.stage:>2}: {_us(stage.duration_ns):>12}  "
                f"compute {_us(stage.compute_ns):>12}  "
                f"hidden {_us(stage.hidden_ns):>12}  "
                f"exposed {_us(stage.exposed_ns):>12}  [{stage.dominant}]")
    else:
        lines.append("per-GEMM-stage attribution: no gemm.stage_end "
                     "counter tracks in this trace")
    if plan:
        lines.append("per-collective-plan-phase attribution:")
        for span in plan:
            hidden_pct = (100 * span.hidden_ns / span.comm_ns
                          if span.comm_ns else 0.0)
            lines.append(
                f"  {span.stage:<8} comm {_us(span.comm_ns):>12}  "
                f"hidden {_us(span.hidden_ns):>12} ({hidden_pct:.1f}%)  "
                f"exposed {_us(span.exposed_ns):>12}")
    else:
        lines.append("per-collective-plan-phase attribution: no DMA spans "
                     "with a stage tag in this trace")
    return PassResult("stages", data, "\n".join(lines))


def pass_chunk_flows(query: TraceQuery) -> PassResult:
    flows = query.chunk_flows()
    if not flows:
        return PassResult("chunk-flows", {"flows": []},
                          "chunk flows: no DMA spans in this trace")
    data = {"flows": [flow.to_dict() for flow in flows]}
    waits = [flow.trigger_to_wire_ns for flow in flows if flow.links]
    if waits:
        data["trigger_to_wire"] = _distribution(waits)
    matched = sum(1 for flow in flows if flow.links)
    landed = sum(1 for flow in flows if flow.dram)
    lines = [f"chunk flows: {len(flows)} DMA commands, "
             f"{matched} joined to link spans, "
             f"{landed} joined to DRAM service"]
    if waits:
        dist = data["trigger_to_wire"]
        lines.append(
            f"  trigger-to-wire latency: p50 {_us(dist['p50'])}  "
            f"p99 {_us(dist['p99'])}  max {_us(dist['max'])}")
    total_link = sum(flow.link_ns for flow in flows)
    total_dram = sum(flow.dram_ns for flow in flows)
    lines.append(f"  per-flow activity: link {_us(total_link)} total, "
                 f"dram {_us(total_dram)} total")
    return PassResult("chunk-flows", data, "\n".join(lines))


def pass_trigger_latency(query: TraceQuery) -> PassResult:
    """Tracker trigger-latency distribution — from the per-completion
    counter tracks when present, else the snapshot's aggregate stats."""
    view = counter_view(query, r"^gpu\d+\.tracker\.trigger_latency_ns$")
    values = view.values()
    if values:
        dist = _distribution(values)
        data = {"source": "counter_tracks", "per_gpu": {
            track: _distribution([v for _t, v in samples])
            for track, samples in sorted(view.tracks.items())
        }, **dist}
        return PassResult("trigger-latency", data, "\n".join([
            "tracker trigger latency (per completion):",
            f"  n={dist['count']}  min {_us(dist['min'])}  "
            f"p50 {_us(dist['p50'])}  p90 {_us(dist['p90'])}  "
            f"p99 {_us(dist['p99'])}  max {_us(dist['max'])}",
        ]))
    # Fallback: aggregate ValueStats from the embedded registry snapshot.
    snapshot = query.registry_snapshot or {}
    merged = {"count": 0, "total": 0.0,
              "min": float("inf"), "max": float("-inf")}
    for scope in snapshot.get("scopes", []):
        if scope.get("component") != "tracker":
            continue
        stats = scope.get("observations", {}).get("trigger_latency_ns")
        if not stats or not stats.get("count"):
            continue
        merged["count"] += stats["count"]
        merged["total"] += stats["total"]
        merged["min"] = min(merged["min"], stats["min"])
        merged["max"] = max(merged["max"], stats["max"])
    if merged["count"]:
        data = {"source": "registry_snapshot", "count": merged["count"],
                "min": merged["min"], "max": merged["max"],
                "mean": merged["total"] / merged["count"]}
        return PassResult("trigger-latency", data, "\n".join([
            "tracker trigger latency (snapshot aggregate):",
            f"  n={data['count']}  min {_us(data['min'])}  "
            f"mean {_us(data['mean'])}  max {_us(data['max'])}",
        ]))
    return PassResult(
        "trigger-latency", {"source": None, "count": 0},
        "tracker trigger latency: no tracker data in this trace "
        "(no counter tracks or registry snapshot)")


def pass_deferrals(query: TraceQuery) -> PassResult:
    """MCA arbiter deferral attribution from the embedded registry
    snapshot (arbitration decisions are counters, not spans)."""
    snapshot = query.registry_snapshot or {}
    per_gpu: Dict[str, Dict[str, float]] = {}
    totals: Dict[str, float] = {}
    for scope in snapshot.get("scopes", []):
        if scope.get("component") != "arbiter":
            continue
        counters = scope.get("counters", {})
        if not counters:
            continue
        per_gpu[f"gpu{scope.get('gpu')}"] = dict(counters)
        for name, value in counters.items():
            totals[name] = totals.get(name, 0.0) + value
    if not totals:
        return PassResult(
            "deferrals", {"totals": {}, "per_gpu": {}},
            "arbiter deferrals: no arbiter counters in this trace (saved "
            "without a registry, or the run used no MCA arbiter)")
    grants = sum(v for k, v in totals.items()
                 if k.startswith("comm_grants."))
    gated = sum(v for k, v in totals.items()
                if k.startswith("comm_deferrals.t"))
    busy = totals.get("comm_deferrals.compute_busy", 0.0)
    full = totals.get("comm_deferrals.queue_full", 0.0)
    deferred = gated + busy + full
    rounds = grants + deferred
    lines = ["arbiter deferral attribution:",
             f"  comm grants {grants:.0f}  deferrals {deferred:.0f}"
             + (f"  ({100 * deferred / rounds:.1f}% of comm rounds held)"
                if rounds else "")]
    if deferred:
        lines.append(f"    by occupancy gate: {gated:.0f}   "
                     f"compute busy: {busy:.0f}   "
                     f"queue full: {full:.0f}")
    fires = totals.get("anti_starvation_fires", 0.0)
    if fires:
        lines.append(f"  anti-starvation fires: {fires:.0f} "
                     "(comm granted over waiting compute)")
    data = {"totals": totals, "per_gpu": per_gpu,
            "comm_grants": grants, "comm_deferrals": deferred,
            "deferral_breakdown": {"gate": gated, "compute_busy": busy,
                                   "queue_full": full}}
    return PassResult("deferrals", data, "\n".join(lines))


def pass_incidents(query: TraceQuery) -> PassResult:
    """Fault / resilience events joined onto the timeline: for each
    marker, what the machine was doing on that track at that instant."""
    incidents = query.incidents()
    if not incidents:
        return PassResult("incidents", {"incidents": []},
                          "incidents: none recorded in this trace")
    rows: List[Dict[str, Any]] = []
    lines = [f"incident overlay ({len(incidents)} events):"]
    for mark in incidents:
        at = mark.start_ns
        active = [s for s in query.select(window=(at, at))
                  if s.category not in ("fault", "resilience")
                  and s.start_ns <= at <= s.end_ns
                  and s.end_ns > s.start_ns]
        active_names = sorted({f"{s.track}:{s.name}" for s in active})
        rows.append({"name": mark.name, "category": mark.category,
                     "track": mark.track, "at_ns": at,
                     "args": mark.args, "active": active_names})
        overlay = ", ".join(active_names[:3]) if active_names else "idle"
        if len(active_names) > 3:
            overlay += f" (+{len(active_names) - 3} more)"
        lines.append(f"  {_us(at):>14}  [{mark.category}] "
                     f"{mark.track}: {mark.name}  during: {overlay}")
    fault_count = sum(1 for m in incidents if m.category == "fault")
    data = {"incidents": rows, "n_faults": fault_count,
            "n_resilience": len(incidents) - fault_count}
    return PassResult("incidents", data, "\n".join(lines))


def pass_critical_path(query: TraceQuery) -> PassResult:
    steps = query.critical_path()
    if not steps:
        return PassResult(
            "critical-path", {"steps": [], "breakdown": {}},
            "critical path: no spans in the GEMM/DMA/link/DRAM chain")
    breakdown = query.critical_path_breakdown()
    data = {"steps": [step.to_dict() for step in steps],
            "breakdown": breakdown,
            "path_span_ns": steps[-1].span.end_ns - steps[0].span.start_ns}
    total = sum(breakdown.values())
    lines = [f"critical path: {len(steps)} spans covering "
             f"{_us(data['path_span_ns'])}"]
    for category, ns in sorted(breakdown.items(),
                               key=lambda item: -item[1]):
        share = 100 * ns / total if total else 0.0
        lines.append(f"  {category:<8} {_us(ns):>14}  ({share:.1f}%)")
    shown = steps if len(steps) <= 12 else steps[:6] + steps[-6:]
    lines.append("  walk (chronological):")
    for index, step in enumerate(shown):
        if len(steps) > 12 and index == 6:
            lines.append(f"    ... {len(steps) - 12} steps elided ...")
        gap = f"  (+{_us(step.slack_ns)} gap)" if step.slack_ns else ""
        lines.append(f"    {_us(step.span.start_ns):>14} "
                     f"[{step.span.category}] {step.span.track}: "
                     f"{step.span.name} ({_us(step.span.duration_ns)})"
                     f"{gap}")
    return PassResult("critical-path", data, "\n".join(lines))


def pass_policy_decisions(query: TraceQuery) -> PassResult:
    """Overlap-policy decisions joined against arbiter gate outcomes.

    The policy layer emits one instant per tunable decision (category
    ``policy``: threshold retunes, pacing gaps, eagerness delays); the
    arbiter's registry counters record what each threshold actually did
    to the communication stream (``comm_grants.tN`` /
    ``comm_deferrals.tN``).  This pass reconstructs the per-GPU
    threshold trajectory and reports, per threshold the run visited,
    how the occupancy gate behaved while it was in force.
    """
    marks = [span for span in query.select(category="policy")]
    if not marks:
        return PassResult(
            "policy-decisions", {"decisions": 0, "by_kind": {},
                                 "by_reason": {}, "per_gpu": {},
                                 "gate_by_threshold": {}},
            "policy decisions: no policy instants in this trace (run "
            "predates the policy layer, or was traced without an "
            "overlap policy attached)")
    marks.sort(key=lambda span: span.start_ns)
    policy_names = sorted({span.args.get("policy", "?") for span in marks})
    by_kind: Dict[str, int] = {}
    by_reason: Dict[str, int] = {}
    per_gpu: Dict[str, Dict[str, Any]] = {}
    for mark in marks:
        args = mark.args
        kind = args.get("kind", "?")
        by_kind[kind] = by_kind.get(kind, 0) + 1
        reason = args.get("reason", "?")
        by_reason[reason] = by_reason.get(reason, 0) + 1
        if kind != "threshold":
            continue
        gpu = f"gpu{args.get('gpu')}"
        entry = per_gpu.setdefault(gpu, {
            "decisions": 0, "first_threshold": args.get("value"),
            "last_threshold": None, "thresholds_visited": [],
        })
        entry["decisions"] += 1
        entry["last_threshold"] = args.get("value")
        if args.get("value") not in entry["thresholds_visited"]:
            entry["thresholds_visited"].append(args.get("value"))
    # Join: what did the occupancy gate do under each threshold?
    snapshot = query.registry_snapshot or {}
    gate: Dict[str, Dict[str, float]] = {}
    for scope in snapshot.get("scopes", []):
        if scope.get("component") != "arbiter":
            continue
        for name, value in scope.get("counters", {}).items():
            for prefix, field_name in (("comm_grants.t", "grants"),
                                       ("comm_deferrals.t", "deferrals")):
                if name.startswith(prefix):
                    tag = name[len(prefix):]
                    row = gate.setdefault(tag, {"grants": 0.0,
                                                "deferrals": 0.0})
                    row[field_name] += value
    lines = [f"policy decisions ({'/'.join(policy_names)}): "
             f"{len(marks)} instants",
             "  by kind: " + "  ".join(f"{kind}={count}" for kind, count
                                       in sorted(by_kind.items())),
             "  by reason: " + "  ".join(
                 f"{reason}={count}" for reason, count
                 in sorted(by_reason.items()))]
    for gpu, entry in sorted(per_gpu.items()):
        path = " -> ".join(str(v) for v in entry["thresholds_visited"])
        lines.append(f"  {gpu}: {entry['decisions']} threshold "
                     f"decision(s), ladder {path}, "
                     f"final {entry['last_threshold']}")
    if gate:
        lines.append("  occupancy-gate outcome while each threshold was "
                     "in force:")
        for tag, row in sorted(
                gate.items(),
                key=lambda item: (item[0] == "inf",
                                  0.0 if item[0] == "inf"
                                  else float(item[0]))):
            rounds = row["grants"] + row["deferrals"]
            held = (f"  ({100 * row['deferrals'] / rounds:.1f}% held)"
                    if rounds else "")
            lines.append(f"    t={tag:<4} grants {row['grants']:.0f}  "
                         f"deferrals {row['deferrals']:.0f}{held}")
    else:
        lines.append("  (no arbiter counters in this trace — saved "
                     "without a registry snapshot; gate join skipped)")
    data = {"decisions": len(marks), "policies": policy_names,
            "by_kind": by_kind, "by_reason": by_reason,
            "per_gpu": per_gpu, "gate_by_threshold": gate}
    return PassResult("policy-decisions", data, "\n".join(lines))


#: the pass registry, in report order.
PASSES: Dict[str, Callable[[TraceQuery], PassResult]] = {
    "summary": pass_summary,
    "decomposition": pass_decomposition,
    "stages": pass_stages,
    "chunk-flows": pass_chunk_flows,
    "trigger-latency": pass_trigger_latency,
    "deferrals": pass_deferrals,
    "incidents": pass_incidents,
    "critical-path": pass_critical_path,
    "policy-decisions": pass_policy_decisions,
}


def run_passes(query: TraceQuery,
               names: Optional[List[str]] = None) -> List[PassResult]:
    """Run the named passes (default: all) in registry order."""
    selected = list(PASSES) if not names else names
    unknown = [name for name in selected if name not in PASSES]
    if unknown:
        raise KeyError(
            f"unknown pass(es) {unknown}; available: {list(PASSES)}")
    return [PASSES[name](query)
            for name in PASSES if name in selected]
