"""Tiled GEMM kernel execution model.

A GEMM runs as a sequence of *stages* (Section 2.5): each stage's
workgroups read their A/B operand tiles, compute, then emit a bursty write
phase.  Operand reads for stage ``s+1`` are prefetched while stage ``s``
computes (double buffering), so a stage's duration is
``max(compute_time, read_time)`` and the paper's Figure 17 read-phase /
write-burst shape emerges naturally from the memory system.

Where the output goes is delegated to a :class:`StoreSink`:

* :class:`LocalWriteSink` — the baseline: plain local DRAM writes on the
  compute stream.
* T3's fused sink (:mod:`repro.t3.fusion`) — routes each chunk to local
  NMC updates or remote/DMA destinations per the address-space map.

The kernel itself never knows whether it is fused — that is the paper's
transparency claim (Section 4.4): only the output address mapping and a
store flag change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.gpu.wavefront import StageInfo, TileGrid
from repro.memory.cache import GEMMTraffic
from repro.memory.request import AccessKind, Stream
from repro.sim.engine import BaseEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.gpu import GPU


@dataclass
class GEMMResult:
    """Timing record of one GEMM execution."""

    start: float = 0.0
    end: float = 0.0
    stage_ends: List[float] = field(default_factory=list)
    read_bytes: float = 0.0
    write_bytes: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


class StoreSink:
    """Where a GEMM stage's output goes (strategy interface)."""

    #: extra expected updates per element beyond the local store; used by
    #: reporting only.
    def store_stage(self, gpu: "GPU", kernel: "GEMMKernel",
                    stage: StageInfo) -> List[BaseEvent]:
        raise NotImplementedError

    def on_kernel_complete(self, gpu: "GPU", kernel: "GEMMKernel") -> None:
        """Hook fired after the kernel's compute stream drains."""


class LocalWriteSink(StoreSink):
    """Baseline behaviour: write the whole stage output to local DRAM."""

    def __init__(self, label: str = "gemm",
                 kind: AccessKind = AccessKind.WRITE):
        self.label = label
        self.kind = kind

    def store_stage(self, gpu: "GPU", kernel: "GEMMKernel",
                    stage: StageInfo) -> List[BaseEvent]:
        events: List[BaseEvent] = []
        for chunk_id, nbytes in stage.chunk_bytes.items():
            events.extend(gpu.mc.submit_bulk(
                self.kind, Stream.COMPUTE, nbytes, self.label,
                chunk_id=chunk_id,
            ))
        return events


class GEMMKernel:
    """One tiled GEMM launch on one GPU."""

    def __init__(self, grid: TileGrid, traffic: GEMMTraffic,
                 sink: Optional[StoreSink] = None, label: str = "gemm",
                 n_cus: Optional[int] = None, calibrate_mca: bool = False,
                 launch_overhead_ns: float = 2000.0,
                 stage_gates: Optional[List[Optional[BaseEvent]]] = None):
        if len(traffic.stage_read_bytes) != len(grid.stages):
            raise ValueError(
                "traffic model and tile grid disagree on stage count "
                f"({traffic.n_stages} vs {len(grid.stages)})"
            )
        if stage_gates is not None and len(stage_gates) != len(grid.stages):
            raise ValueError("need one gate slot per stage (None = open)")
        self.grid = grid
        self.traffic = traffic
        self.sink = sink or LocalWriteSink(label=label)
        self.label = label
        self.n_cus_override = n_cus
        self.calibrate_mca = calibrate_mca
        self.launch_overhead_ns = launch_overhead_ns
        #: per-stage scheduling gates: a stage's WGs are not scheduled
        #: until its gate fires (T3's consumer-side triggering, Sec. 7.2).
        self.stage_gates = stage_gates
        self.result = GEMMResult()

    # -- timing model --------------------------------------------------------

    def sustained_flops(self, gpu: "GPU") -> float:
        compute = gpu.system.compute
        n_cus = self.n_cus_override or compute.n_cus
        return (
            n_cus * compute.flops_per_cu_per_cycle * compute.clock_ghz
            * compute.gemm_efficiency
        )

    def stage_flops(self, stage: StageInfo) -> float:
        kernel = self.grid.kernel
        shape = self.grid.shape
        per_wg = 2.0 * shape.k * kernel.macro_tile_m * kernel.macro_tile_n
        return per_wg * stage.n_wgs

    def stage_compute_time(self, gpu: "GPU", stage: StageInfo) -> float:
        return self.stage_flops(stage) / self.sustained_flops(gpu)

    def total_flops(self) -> float:
        return sum(self.stage_flops(s) for s in self.grid.stages)

    # -- execution -------------------------------------------------------------

    def _stage_blocked(self, next_stage: int, current_stage: int) -> bool:
        """True when ``next_stage`` is gated and its gate has not fired."""
        if self.stage_gates is None or next_stage == current_stage:
            return False
        gate = self.stage_gates[next_stage]
        return gate is not None and not gate.fired

    def _issue_wave(self, gpu: "GPU", stage_index: int,
                    wave: int, n_waves: int) -> List[BaseEvent]:
        total = self.traffic.stage_read_bytes[stage_index]
        nbytes = total / n_waves
        self.result.read_bytes += nbytes
        return gpu.mc.submit_bulk(
            AccessKind.READ, Stream.COMPUTE, nbytes, self.label)

    def execute(self, gpu: "GPU"):
        """Simulation coroutine for the whole kernel.

        Each stage runs as ``n_waves`` fetch/compute slices: a slice's
        operand reads are issued one wave ahead (K-slab double buffering),
        so compute stalls whenever DRAM cannot keep up — the contention
        mechanism of Figure 17.
        """
        env = gpu.env
        self.result.start = env.now
        if self.launch_overhead_ns:
            yield env.timeout(self.launch_overhead_ns)

        stages = self.grid.stages
        n_waves = max(1, gpu.system.fidelity.gemm_waves_per_stage)
        # Fault seam resolved once per kernel: env.faults never changes
        # mid-run, and an injector whose plan has no compute faults always
        # answers 1.0 — skip the per-wave query in both cases.
        faults = env.faults
        straggled = faults is not None and faults.has_compute_faults
        pending_reads = (
            self._issue_wave(gpu, 0, 0, n_waves) if stages else []
        )
        first_stage_start = env.now

        for stage in stages:
            if self.stage_gates is not None:
                gate = self.stage_gates[stage.index]
                if gate is not None and not gate.fired:
                    yield gate
            if pending_reads is None:
                # Prefetch was blocked by this stage's gate; fetch now.
                pending_reads = self._issue_wave(gpu, stage.index, 0, n_waves)
            slice_time = self.stage_compute_time(gpu, stage) / n_waves
            for wave in range(n_waves):
                if pending_reads:
                    yield env.all_of(pending_reads)
                # Prefetch the next wave's operands (possibly the first
                # wave of the next stage) while this slice computes.
                next_wave = wave + 1
                next_stage = stage.index
                if next_wave == n_waves:
                    next_wave = 0
                    next_stage += 1
                if next_stage >= len(stages):
                    pending_reads = []
                elif self._stage_blocked(next_stage, stage.index):
                    # Never read operands that have not arrived yet.
                    pending_reads = None
                else:
                    pending_reads = self._issue_wave(
                        gpu, next_stage, next_wave, n_waves)
                # (pending_reads can be None only on a stage's last wave,
                # when the next stage's gate is still closed.)
                if straggled:
                    # Straggler seam: the factor is queried per wave so a
                    # windowed slowdown paces exactly the waves inside it.
                    yield env.timeout(slice_time * faults.compute_factor(
                        gpu.gpu_id, env.now))
                else:
                    yield env.timeout(slice_time)

            write_events = self.sink.store_stage(gpu, self, stage)
            self.result.write_bytes += self.traffic.stage_write_bytes[stage.index]
            self.result.stage_ends.append(env.now)
            if env.obs is not None:
                scope = env.obs.scope(gpu.gpu_id, "gemm")
                wfs = stage.n_wgs * self.grid.kernel.wfs_per_wg
                scope.count("wgs_retired", stage.n_wgs)
                scope.count("wfs_retired", wfs)
                scope.series("wf_retired").record(env.now, wfs)
                scope.series("stage_end").record(env.now, stage.index)

            if stage.index == 0 and self.calibrate_mca:
                duration = env.now - first_stage_start
                gpu.mc.calibrate(
                    read_bytes=self.traffic.stage_read_bytes[0],
                    write_bytes=self.traffic.stage_write_bytes[0],
                    duration_ns=max(duration, 1.0),
                )
            # write_events drain in the background; the burst contends with
            # the next stage's reads exactly as in Figure 17.
            del write_events

        # The kernel retires when its stores are globally visible.
        yield gpu.mc.drain(Stream.COMPUTE)
        self.result.end = env.now
        self.sink.on_kernel_complete(gpu, self)
        return self.result
