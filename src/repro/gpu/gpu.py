"""The assembled GPU: memory controller + DMA engine + link endpoints.

A :class:`GPU` owns no global knowledge; multi-GPU structure (ring /
fully-connected wiring) is assembled by :mod:`repro.interconnect.topology`.
The optional ``tracker`` attribute is populated by the T3 configuration
step (:mod:`repro.t3`) — a baseline GPU simply has none, mirroring the
paper's "T3 enhancements in orange" framing of Figure 8.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import SystemConfig
from repro.gpu.dma import DMAEngine
from repro.memory.controller import MemoryController
from repro.sim.engine import Environment, Process, SimulationError
from repro.sim.primitives import Pipe
from repro.sim.stats import IntervalStats


class GPU:
    """One simulated GPU."""

    def __init__(self, env: Environment, gpu_id: int, system: SystemConfig,
                 policy_name: str = "compute-priority"):
        self.env = env
        self.gpu_id = gpu_id
        self.system = system
        self.mc = MemoryController(env, system, policy_name=policy_name,
                                   gpu_id=gpu_id)
        self.dma = DMAEngine(self)
        self.intervals = IntervalStats()
        self.tracker = None  # set by repro.t3 when T3 is configured
        self._links: Dict[int, Pipe] = {}
        self._peers: Dict[int, "GPU"] = {}

    # -- wiring -----------------------------------------------------------------

    def connect(self, peer: "GPU", pipe: Pipe) -> None:
        """Register an *outgoing* link to ``peer``."""
        if peer.gpu_id == self.gpu_id:
            raise SimulationError("cannot link a GPU to itself")
        self._links[peer.gpu_id] = pipe
        self._peers[peer.gpu_id] = peer

    def link_to(self, gpu_id: int) -> Pipe:
        if gpu_id not in self._links:
            raise SimulationError(
                f"GPU {self.gpu_id} has no link to GPU {gpu_id}")
        return self._links[gpu_id]

    def peer(self, gpu_id: int) -> "GPU":
        if gpu_id not in self._peers:
            raise SimulationError(
                f"GPU {self.gpu_id} has no peer GPU {gpu_id}")
        return self._peers[gpu_id]

    @property
    def neighbors(self) -> Dict[int, "GPU"]:
        return dict(self._peers)

    # -- kernel launch --------------------------------------------------------------

    def launch(self, kernel, name: Optional[str] = None) -> Process:
        """Run ``kernel.execute(self)`` as a process, recording its span."""
        label = name or getattr(kernel, "label", type(kernel).__name__)

        def _wrapper():
            tag = f"{label}#{self.env.now:.0f}"
            start = self.env.now
            self.intervals.begin(tag, start)
            result = yield self.env.process(
                kernel.execute(self), name=f"gpu{self.gpu_id}.{label}")
            self.intervals.end(tag, self.env.now)
            if self.env.obs is not None:
                scope = self.env.obs.scope(self.gpu_id, "compute")
                scope.span("kernel", start, self.env.now)
                scope.count("kernels")
            if self.env.trace is not None:
                self.env.trace.span(
                    name=label, category="kernel", start_ns=start,
                    end_ns=self.env.now, track=f"GPU{self.gpu_id}",
                    group="compute")
            return result

        return self.env.process(_wrapper(), name=f"gpu{self.gpu_id}.{label}.outer")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GPU {self.gpu_id} links={sorted(self._links)}>"
