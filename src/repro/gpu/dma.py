"""DMA engine with pre-programmed command table (Section 4.2.2).

The GPU driver programs :class:`DMACommand` entries ahead of time (during
the address-space configuration of Figure 12); at runtime the T3 Tracker
marks an entry *ready* and the engine executes it without any CU
involvement:

1. read the source region from local DRAM on the **communication** stream
   (skipped for pure forwarding collectives such as all-gather reusing a
   just-received buffer),
2. serialize it onto the inter-GPU link,
3. issue the arriving bytes at the destination GPU as writes or NMC
   updates, tagged with the (wg, wf) metadata the destination's Tracker
   needs.

Transfers are pipelined at workgroup-tile granularity so link serialization
overlaps the local reads and remote writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.memory.request import AccessKind, Stream
from repro.sim.engine import BaseEvent, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.gpu import GPU


@dataclass
class DMACommand:
    """One pre-programmed transfer: a chunk (or chunk slice) to a peer."""

    command_id: str
    dst_gpu_id: int
    chunk_id: int
    #: (wg_id, nbytes) slices; wg ids let the destination Tracker attribute
    #: the arriving updates (Section 4.2.2).
    wg_slices: Tuple[Tuple[int, int], ...]
    #: how arriving bytes apply at the destination: WRITE (store) or
    #: UPDATE (NMC op-and-store) — the "DMA functionality" of dma_map.
    op: AccessKind = AccessKind.UPDATE
    label: str = "rs"
    #: whether the engine must read the source data from local DRAM first.
    read_source: bool = True
    #: plan stage this transfer belongs to ("intra"/"inter"/"ring"); when
    #: set, the engine records a ``stage.<name>`` span for the profiler's
    #: per-plan-stage attribution.
    stage: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in (AccessKind.WRITE, AccessKind.UPDATE):
            raise ValueError("DMA op must be WRITE or UPDATE")
        if not self.wg_slices:
            raise ValueError("DMA command must move at least one slice")
        if any(nbytes <= 0 for _wg, nbytes in self.wg_slices):
            raise ValueError("DMA slices must have positive size")

    @property
    def nbytes(self) -> int:
        return sum(nbytes for _wg, nbytes in self.wg_slices)


class DMAEngine:
    """Executes pre-programmed DMA commands for one GPU."""

    def __init__(self, gpu: "GPU"):
        self.gpu = gpu
        self.env = gpu.env
        self._commands: Dict[str, DMACommand] = {}
        self._completions: Dict[str, BaseEvent] = {}
        self._triggered: set[str] = set()
        self.bytes_moved = 0.0
        #: completion notifications suppressed by an injected drop fault.
        self.dropped_completions: List[str] = []
        #: completion notifications re-issued by the resilience runtime.
        self.reissued_completions: List[str] = []
        #: duplicated completion notifications delivered and absorbed.
        self.duplicates_absorbed = 0
        #: sim time each command's remote writes finished (set whether or
        #: not the completion notification was delivered) — the signal
        #: that separates a *lost notification* from an in-flight
        #: transfer at a resilience deadline check.
        self._finished_at: Dict[str, float] = {}
        #: live transfers (triggered, remote writes not yet all serviced).
        self.inflight_commands = 0
        self.inflight_bytes = 0

    # -- programming (done at configuration time, Figure 12) -------------------

    def program(self, command: DMACommand) -> None:
        if command.command_id in self._commands:
            raise SimulationError(
                f"DMA command {command.command_id!r} already programmed")
        if command.dst_gpu_id == self.gpu.gpu_id:
            raise SimulationError("DMA destination cannot be the local GPU")
        self._commands[command.command_id] = command
        self._completions[command.command_id] = BaseEvent(self.env)

    def is_programmed(self, command_id: str) -> bool:
        return command_id in self._commands

    def completion(self, command_id: str) -> BaseEvent:
        """Event firing when the command's remote writes are all serviced."""
        if command_id not in self._completions:
            raise SimulationError(f"unknown DMA command {command_id!r}")
        return self._completions[command_id]

    # -- triggering (done by the Tracker at runtime) ---------------------------

    def trigger(self, command_id: str) -> BaseEvent:
        """Mark a command ready and start the transfer."""
        if command_id not in self._commands:
            raise SimulationError(
                f"DMA trigger for unprogrammed command {command_id!r}")
        if command_id in self._triggered:
            raise SimulationError(
                f"DMA command {command_id!r} triggered twice — the Tracker "
                "must fire exactly once per region"
            )
        self._triggered.add(command_id)
        if self.env.invariants is not None:
            self.env.invariants.on_trigger_fired(
                f"DMA command {command_id} on GPU {self.gpu.gpu_id}")
        command = self._commands[command_id]
        self.inflight_commands += 1
        self.inflight_bytes += command.nbytes
        if self.env.obs is not None:
            scope = self.env.obs.scope(self.gpu.gpu_id, "dma")
            scope.count("triggers")
            scope.count("bytes_triggered", command.nbytes)
            scope.gauge("inflight_commands").set(
                self.env.now, self.inflight_commands)
            scope.gauge("inflight_bytes").set(
                self.env.now, self.inflight_bytes)
        self.env.process(
            self._run(command), name=f"dma.{self.gpu.gpu_id}.{command_id}")
        if self.env.resilience is not None:
            self.env.resilience.watch_dma(self, command)
        return self._completions[command_id]

    # -- execution ----------------------------------------------------------------

    def _slice_proc(self, command: DMACommand, wg_id: int, nbytes: int):
        gpu = self.gpu
        if command.read_source:
            reads = gpu.mc.submit_bulk(
                AccessKind.READ, Stream.COMM, nbytes, command.label,
                chunk_id=command.chunk_id)
            if reads:
                yield self.env.all_of(reads)
        link = gpu.link_to(command.dst_gpu_id)
        yield link.transfer(nbytes)
        remote = gpu.peer(command.dst_gpu_id)
        writes = remote.mc.submit_bulk(
            command.op, Stream.COMM, nbytes, command.label,
            wg_id=wg_id, chunk_id=command.chunk_id)
        if writes:
            yield self.env.all_of(writes)
        self.bytes_moved += nbytes

    def _run(self, command: DMACommand):
        start = self.env.now
        # Command pacing is an overlap-policy decision: a positive gap
        # staggers slice launches to soften the DRAM/link burst; gap 0
        # (the paper's behavior, and every run without a policy) takes
        # the launch-all-at-once path unchanged.
        overlap = self.env.overlap
        gap = 0.0
        if overlap is not None:
            gap = overlap.dma_pacing_gap(self.gpu.gpu_id, command)
        if gap > 0.0:
            slice_procs = []
            for index, (wg_id, nbytes) in enumerate(command.wg_slices):
                if index:
                    yield self.env.timeout(gap)
                slice_procs.append(self.env.process(
                    self._slice_proc(command, wg_id, nbytes),
                    name=f"dma-slice.{command.command_id}.{wg_id}",
                ))
        else:
            slice_procs = [
                self.env.process(
                    self._slice_proc(command, wg_id, nbytes),
                    name=f"dma-slice.{command.command_id}.{wg_id}",
                )
                for wg_id, nbytes in command.wg_slices
            ]
        yield self.env.all_of(slice_procs)
        self._finished_at[command.command_id] = self.env.now
        self.inflight_commands -= 1
        self.inflight_bytes -= command.nbytes
        if self.env.obs is not None:
            scope = self.env.obs.scope(self.gpu.gpu_id, "dma")
            scope.count("completions")
            scope.observe("transfer_ns", self.env.now - start)
            scope.span("transfer", start, self.env.now)
            if command.stage is not None:
                scope.span(f"stage.{command.stage}", start, self.env.now)
            scope.gauge("inflight_commands").set(
                self.env.now, self.inflight_commands)
            scope.gauge("inflight_bytes").set(
                self.env.now, self.inflight_bytes)
        if self.env.trace is not None:
            args = {"bytes": command.nbytes, "chunk": command.chunk_id,
                    "dst": command.dst_gpu_id}
            if command.stage is not None:
                args["stage"] = command.stage
            self.env.trace.span(
                name=f"{command.command_id}->gpu{command.dst_gpu_id}",
                category="dma", start_ns=start, end_ns=self.env.now,
                track=f"GPU{self.gpu.gpu_id}.dma", group="compute",
                args=args)
        self._deliver_completion(command)

    def _deliver_completion(self, command: DMACommand) -> None:
        """Notify completion waiters — the injection seam for misdelivered
        DMA-completion notifications (drop / delay / duplicate)."""
        event = self._completions[command.command_id]
        faults = self.env.faults
        fault = None
        if faults is not None:
            fault = faults.dma_completion_fault(
                self.gpu.gpu_id, command.command_id)
        if fault is None:
            event.succeed()
            return
        if fault.action == "drop":
            # Never delivered: waiters hang, the schedule eventually drains
            # and the watchdog / quiescence checks convert the hang into a
            # diagnosable SimulationError.
            self.dropped_completions.append(command.command_id)
            return
        if fault.action == "delay":
            event.succeed(delay=fault.delay_ns)
            return
        # "duplicate": the first notification fires the event; the second
        # must be absorbed — re-firing would be a single-fire violation
        # (BaseEvent.succeed would raise on the double trigger).
        event.succeed()
        self.duplicates_absorbed += 1
        if self.env.invariants is not None:
            self.env.invariants.on_duplicate_absorbed(
                self.gpu.gpu_id, command.command_id)

    # -- recovery (driven by the resilience runtime) ----------------------------

    def transfer_finished(self, command_id: str) -> bool:
        """True once the command's remote writes have all been serviced,
        whether or not the completion notification was delivered."""
        return command_id in self._finished_at

    def transfer_finished_at(self, command_id: str) -> Optional[float]:
        """Sim time the command's transfer finished, or None if in flight."""
        return self._finished_at.get(command_id)

    def redeliver(self, command_id: str, delay: float = 0.0) -> bool:
        """Re-issue a lost completion notification for a finished command.

        The resilience runtime calls this when a deadline (or drain
        backstop) finds a finished transfer whose completion never fired.
        Returns False when there is nothing to re-deliver: the event has
        already fired, or the transfer has not actually finished.
        """
        if command_id not in self._completions:
            raise SimulationError(f"unknown DMA command {command_id!r}")
        event = self._completions[command_id]
        if event.triggered or command_id not in self._finished_at:
            return False
        event.succeed(delay=delay)
        self.reissued_completions.append(command_id)
        if self.env.obs is not None:
            self.env.obs.scope(self.gpu.gpu_id, "dma").count("reissues")
        return True

    # -- introspection -------------------------------------------------------------

    @property
    def programmed_commands(self) -> List[str]:
        return sorted(self._commands)

    @property
    def triggered_commands(self) -> List[str]:
        return sorted(self._triggered)
