"""DMA engine with pre-programmed command table (Section 4.2.2).

The GPU driver programs :class:`DMACommand` entries ahead of time (during
the address-space configuration of Figure 12); at runtime the T3 Tracker
marks an entry *ready* and the engine executes it without any CU
involvement:

1. read the source region from local DRAM on the **communication** stream
   (skipped for pure forwarding collectives such as all-gather reusing a
   just-received buffer),
2. serialize it onto the inter-GPU link,
3. issue the arriving bytes at the destination GPU as writes or NMC
   updates, tagged with the (wg, wf) metadata the destination's Tracker
   needs.

Transfers are pipelined at workgroup-tile granularity so link serialization
overlaps the local reads and remote writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.memory.request import AccessKind, Stream
from repro.sim.engine import BaseEvent, SimulationError
from repro.sim.machines import CallbackMachine, CompletionGroup

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.gpu import GPU


@dataclass
class DMACommand:
    """One pre-programmed transfer: a chunk (or chunk slice) to a peer."""

    command_id: str
    dst_gpu_id: int
    chunk_id: int
    #: (wg_id, nbytes) slices; wg ids let the destination Tracker attribute
    #: the arriving updates (Section 4.2.2).
    wg_slices: Tuple[Tuple[int, int], ...]
    #: how arriving bytes apply at the destination: WRITE (store) or
    #: UPDATE (NMC op-and-store) — the "DMA functionality" of dma_map.
    op: AccessKind = AccessKind.UPDATE
    label: str = "rs"
    #: whether the engine must read the source data from local DRAM first.
    read_source: bool = True
    #: plan stage this transfer belongs to ("intra"/"inter"/"ring"); when
    #: set, the engine records a ``stage.<name>`` span for the profiler's
    #: per-plan-stage attribution.
    stage: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in (AccessKind.WRITE, AccessKind.UPDATE):
            raise ValueError("DMA op must be WRITE or UPDATE")
        if not self.wg_slices:
            raise ValueError("DMA command must move at least one slice")
        if any(nbytes <= 0 for _wg, nbytes in self.wg_slices):
            raise ValueError("DMA slices must have positive size")

    @property
    def nbytes(self) -> int:
        return sum(nbytes for _wg, nbytes in self.wg_slices)


class _SliceMachine(CallbackMachine):
    """One wg-slice transfer: local reads → link → remote writes/updates.

    Stage map (each boundary armed where the generator's event sat):
    0 = boot, 1 = reads landed (skipped straight through for pure
    forwarding), 2 = remote writes landed, 3 = completion (reports to
    the command's group).
    """

    __slots__ = ("engine", "command", "wg_id", "nbytes", "group",
                 "_stage", "_pending")

    def __init__(self, engine: "DMAEngine", command: DMACommand,
                 wg_id: int, nbytes: int, group: CompletionGroup):
        super().__init__(engine.env)
        self.engine = engine
        self.command = command
        self.wg_id = wg_id
        self.nbytes = nbytes
        self.group = group
        self._stage = 0
        self._pending = 0

    def _advance(self, _event: BaseEvent) -> None:
        stage = self._stage
        engine = self.engine
        if stage == 0:
            self._stage = 1
            command = self.command
            if command.read_source:
                reads = engine.gpu.mc.submit_bulk(
                    AccessKind.READ, Stream.COMM, self.nbytes,
                    command.label, chunk_id=command.chunk_id)
                self._pending = len(reads)
                cb = self._read_done
                for ev in reads:
                    ev.add_callback(cb)
                return
            # Pure forwarding (e.g. all-gather reusing a just-received
            # buffer): straight onto the wire in the boot slot, exactly
            # as the generator did.
            stage = 1
        if stage == 1:
            engine.gpu.link_to(self.command.dst_gpu_id).transfer(
                self.nbytes).add_callback(self._arrived)
            return
        if stage == 2:
            engine.bytes_moved += self.nbytes
            self._stage = 3
            self._arm()
            return
        self.group.done_one()

    def _read_done(self, _event: BaseEvent) -> None:
        self._pending -= 1
        if not self._pending:
            self._arm()

    def _arrived(self, _event: BaseEvent) -> None:
        command = self.command
        remote = self.engine.gpu.peer(command.dst_gpu_id)
        writes = remote.mc.submit_bulk(
            command.op, Stream.COMM, self.nbytes, command.label,
            wg_id=self.wg_id, chunk_id=command.chunk_id)
        self._pending = len(writes)
        cb = self._write_done
        for ev in writes:
            ev.add_callback(cb)

    def _write_done(self, _event: BaseEvent) -> None:
        self._pending -= 1
        if not self._pending:
            self._stage = 2
            self._arm()


class _CommandMachine(CallbackMachine):
    """One triggered DMA command: launch slices (optionally paced), wait
    for all of them, then run the completion/notification block.

    Stage map: 0 = boot, 1 = launch the next slice after a pacing gap,
    2 = all slices finished, 3 = final no-op slot (the former command
    process's completion event, kept for event-count parity).
    """

    __slots__ = ("engine", "command", "start_ns", "_stage", "_index",
                 "_gap", "_group")

    def __init__(self, engine: "DMAEngine", command: DMACommand):
        super().__init__(engine.env)
        self.engine = engine
        self.command = command
        self.start_ns = 0.0
        self._stage = 0
        self._index = 0
        self._gap = 0.0
        self._group: Optional[CompletionGroup] = None

    def _advance(self, _event: BaseEvent) -> None:
        stage = self._stage
        engine = self.engine
        env = self.env
        command = self.command
        if stage == 0:
            self.start_ns = env._now
            # Command pacing is an overlap-policy decision: a positive
            # gap staggers slice launches to soften the DRAM/link burst;
            # gap 0 (the paper's behavior, and every run without a
            # policy) takes the launch-all-at-once path unchanged.
            gap = 0.0
            overlap = env.overlap
            if overlap is not None:
                gap = overlap.dma_pacing_gap(engine.gpu.gpu_id, command)
            slices = command.wg_slices
            group = self._group = CompletionGroup(env, len(slices))
            if gap > 0.0:
                self._gap = gap
                _SliceMachine(engine, command, *slices[0], group).start()
                self._index = 1
                if len(slices) > 1:
                    self._stage = 1
                    self._arm(gap)
                    return
            else:
                for wg_id, nbytes in slices:
                    _SliceMachine(engine, command, wg_id, nbytes,
                                  group).start()
            self._stage = 2
            group.add_callback(self._advance)
            return
        if stage == 1:
            slices = command.wg_slices
            _SliceMachine(engine, command, *slices[self._index],
                          self._group).start()
            self._index += 1
            if self._index < len(slices):
                self._arm(self._gap)
                return
            self._stage = 2
            self._group.add_callback(self._advance)
            return
        if stage == 2:
            now = env._now
            start = self.start_ns
            engine._finished_at[command.command_id] = now
            engine.inflight_commands -= 1
            engine.inflight_bytes -= command.nbytes
            if env.obs is not None:
                scope = env.obs.scope(engine.gpu.gpu_id, "dma")
                scope.count("completions")
                scope.observe("transfer_ns", now - start)
                scope.span("transfer", start, now)
                if command.stage is not None:
                    scope.span(f"stage.{command.stage}", start, now)
                scope.gauge("inflight_commands").set(
                    now, engine.inflight_commands)
                scope.gauge("inflight_bytes").set(
                    now, engine.inflight_bytes)
            if env.trace is not None:
                args = {"bytes": command.nbytes, "chunk": command.chunk_id,
                        "dst": command.dst_gpu_id}
                if command.stage is not None:
                    args["stage"] = command.stage
                env.trace.span(
                    name=f"{command.command_id}->gpu{command.dst_gpu_id}",
                    category="dma", start_ns=start, end_ns=now,
                    track=f"GPU{engine.gpu.gpu_id}.dma", group="compute",
                    args=args)
            engine._deliver_completion(command)
            self._stage = 3
            self._arm()
            return
        # Final slot: the former command process's own completion event.


class DMAEngine:
    """Executes pre-programmed DMA commands for one GPU."""

    def __init__(self, gpu: "GPU"):
        self.gpu = gpu
        self.env = gpu.env
        self._commands: Dict[str, DMACommand] = {}
        self._completions: Dict[str, BaseEvent] = {}
        self._triggered: set[str] = set()
        self.bytes_moved = 0.0
        #: completion notifications suppressed by an injected drop fault.
        self.dropped_completions: List[str] = []
        #: completion notifications re-issued by the resilience runtime.
        self.reissued_completions: List[str] = []
        #: duplicated completion notifications delivered and absorbed.
        self.duplicates_absorbed = 0
        #: sim time each command's remote writes finished (set whether or
        #: not the completion notification was delivered) — the signal
        #: that separates a *lost notification* from an in-flight
        #: transfer at a resilience deadline check.
        self._finished_at: Dict[str, float] = {}
        #: live transfers (triggered, remote writes not yet all serviced).
        self.inflight_commands = 0
        self.inflight_bytes = 0

    # -- programming (done at configuration time, Figure 12) -------------------

    def program(self, command: DMACommand) -> None:
        if command.command_id in self._commands:
            raise SimulationError(
                f"DMA command {command.command_id!r} already programmed")
        if command.dst_gpu_id == self.gpu.gpu_id:
            raise SimulationError("DMA destination cannot be the local GPU")
        self._commands[command.command_id] = command
        self._completions[command.command_id] = BaseEvent(self.env)

    def is_programmed(self, command_id: str) -> bool:
        return command_id in self._commands

    def completion(self, command_id: str) -> BaseEvent:
        """Event firing when the command's remote writes are all serviced."""
        if command_id not in self._completions:
            raise SimulationError(f"unknown DMA command {command_id!r}")
        return self._completions[command_id]

    # -- triggering (done by the Tracker at runtime) ---------------------------

    def trigger(self, command_id: str) -> BaseEvent:
        """Mark a command ready and start the transfer."""
        if command_id not in self._commands:
            raise SimulationError(
                f"DMA trigger for unprogrammed command {command_id!r}")
        if command_id in self._triggered:
            raise SimulationError(
                f"DMA command {command_id!r} triggered twice — the Tracker "
                "must fire exactly once per region"
            )
        self._triggered.add(command_id)
        if self.env.invariants is not None:
            self.env.invariants.on_trigger_fired(
                f"DMA command {command_id} on GPU {self.gpu.gpu_id}")
        command = self._commands[command_id]
        self.inflight_commands += 1
        self.inflight_bytes += command.nbytes
        if self.env.obs is not None:
            scope = self.env.obs.scope(self.gpu.gpu_id, "dma")
            scope.count("triggers")
            scope.count("bytes_triggered", command.nbytes)
            scope.gauge("inflight_commands").set(
                self.env.now, self.inflight_commands)
            scope.gauge("inflight_bytes").set(
                self.env.now, self.inflight_bytes)
        _CommandMachine(self, command).start()
        if self.env.resilience is not None:
            self.env.resilience.watch_dma(self, command)
        return self._completions[command_id]

    # -- execution ----------------------------------------------------------------
    #
    # One _CommandMachine per trigger and one _SliceMachine per wg slice:
    # the callback replacements for the former _run / _slice_proc
    # generator processes, armed at the same slots those processes'
    # events occupied (see repro.sim.machines for the parity contract).

    def _deliver_completion(self, command: DMACommand) -> None:
        """Notify completion waiters — the injection seam for misdelivered
        DMA-completion notifications (drop / delay / duplicate)."""
        event = self._completions[command.command_id]
        faults = self.env.faults
        fault = None
        if faults is not None and faults.has_dma_faults:
            fault = faults.dma_completion_fault(
                self.gpu.gpu_id, command.command_id)
        if fault is None:
            event.succeed()
            return
        if fault.action == "drop":
            # Never delivered: waiters hang, the schedule eventually drains
            # and the watchdog / quiescence checks convert the hang into a
            # diagnosable SimulationError.
            self.dropped_completions.append(command.command_id)
            return
        if fault.action == "delay":
            event.succeed(delay=fault.delay_ns)
            return
        # "duplicate": the first notification fires the event; the second
        # must be absorbed — re-firing would be a single-fire violation
        # (BaseEvent.succeed would raise on the double trigger).
        event.succeed()
        self.duplicates_absorbed += 1
        if self.env.invariants is not None:
            self.env.invariants.on_duplicate_absorbed(
                self.gpu.gpu_id, command.command_id)

    # -- recovery (driven by the resilience runtime) ----------------------------

    def transfer_finished(self, command_id: str) -> bool:
        """True once the command's remote writes have all been serviced,
        whether or not the completion notification was delivered."""
        return command_id in self._finished_at

    def transfer_finished_at(self, command_id: str) -> Optional[float]:
        """Sim time the command's transfer finished, or None if in flight."""
        return self._finished_at.get(command_id)

    def redeliver(self, command_id: str, delay: float = 0.0) -> bool:
        """Re-issue a lost completion notification for a finished command.

        The resilience runtime calls this when a deadline (or drain
        backstop) finds a finished transfer whose completion never fired.
        Returns False when there is nothing to re-deliver: the event has
        already fired, or the transfer has not actually finished.
        """
        if command_id not in self._completions:
            raise SimulationError(f"unknown DMA command {command_id!r}")
        event = self._completions[command_id]
        if event.triggered or command_id not in self._finished_at:
            return False
        event.succeed(delay=delay)
        self.reissued_completions.append(command_id)
        if self.env.obs is not None:
            self.env.obs.scope(self.gpu.gpu_id, "dma").count("reissues")
        return True

    # -- introspection -------------------------------------------------------------

    @property
    def programmed_commands(self) -> List[str]:
        return sorted(self._commands)

    @property
    def triggered_commands(self) -> List[str]:
        return sorted(self._triggered)
