"""GEMM geometry: shapes, output tiling, workgroup stages, WF tiles.

This module is pure bookkeeping (no simulation).  It renders the paper's
execution abstraction:

* A GEMM ``C[M,N] = A[M,K] @ B[K,N]`` is tiled into ``macro_tile_m x
  macro_tile_n`` output tiles, one per workgroup (WG); each WG's
  wavefronts (WFs) produce disjoint, complete *wf tiles* (Section 4.2.1).
* WGs execute in *stages*: the set of WGs the CUs can hold concurrently
  (Section 2.5).  Tensor-parallel slicing divides K only, so the grid,
  stage count and output size are TP-invariant (Figure 5).
* For fusion with a ring collective the output is chunked into ``n_chunks``
  contiguous row blocks and each device enumerates WGs chunk-by-chunk in
  its ring production order (staggered scheduling, Section 4.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro import units
from repro.config import GEMMKernelConfig


@dataclass(frozen=True)
class GEMMShape:
    """Logical GEMM problem ``C[m,n] = A[m,k] @ B[k,n]``."""

    m: int
    n: int
    k: int
    element_bytes: int = units.FP16_BYTES
    name: str = ""

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) < 1:
            raise ValueError(f"GEMM dims must be positive: {self}")
        if self.element_bytes < 1:
            raise ValueError("element_bytes must be positive")

    @property
    def flops(self) -> float:
        """Multiply–accumulate counted as 2 FLOPs."""
        return 2.0 * self.m * self.n * self.k

    @property
    def a_bytes(self) -> int:
        return self.m * self.k * self.element_bytes

    @property
    def b_bytes(self) -> int:
        return self.k * self.n * self.element_bytes

    @property
    def output_bytes(self) -> int:
        return self.m * self.n * self.element_bytes

    def to_dict(self) -> Dict[str, object]:
        return {"m": self.m, "n": self.n, "k": self.k,
                "element_bytes": self.element_bytes, "name": self.name}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GEMMShape":
        return cls(**data)

    def tp_sliced(self, tp: int) -> "GEMMShape":
        """Slice the dot-product (K) dimension ``tp`` ways (Figure 5).

        Output size is unchanged; only per-WG compute shrinks.
        """
        if tp < 1:
            raise ValueError("tp degree must be >= 1")
        if tp > self.k:
            raise ValueError(f"cannot slice K={self.k} {tp} ways")
        new_k = max(1, self.k // tp)
        suffix = f"{self.name}/tp{tp}" if self.name else f"tp{tp}"
        return GEMMShape(self.m, self.n, new_k, self.element_bytes, suffix)


@dataclass(frozen=True)
class WavefrontTile:
    """One wavefront's contiguous slice of a WG's output tile."""

    wg_id: int
    wf_id: int
    nbytes: int
    chunk_id: int

    def tracker_index(self, n_entries: int) -> int:
        """Tracker set index: the WG id's LSBs (Section 4.2.1)."""
        return self.wg_id % n_entries

    def tracker_tag(self, n_entries: int) -> Tuple[int, int]:
        """Tracker tag: (wg_msb, wf_id)."""
        return (self.wg_id // n_entries, self.wf_id)


@dataclass(frozen=True)
class StageInfo:
    """One execution stage: the WGs co-resident on the CUs."""

    index: int
    wg_ids: Tuple[int, ...]
    #: output bytes this stage produces, split per ring chunk.
    chunk_bytes: Dict[int, int] = field(hash=False)
    #: tile rows first touched in this stage (drives A-read traffic).
    new_tile_rows: int = 0
    #: distinct output-tile columns covered (drives B-read traffic).
    touched_cols: int = 0

    @property
    def n_wgs(self) -> int:
        return len(self.wg_ids)

    @property
    def output_bytes(self) -> int:
        return sum(self.chunk_bytes.values())


def split_evenly(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` contiguous near-equal counts."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if total < parts:
        raise ValueError(f"cannot split {total} items into {parts} non-empty parts")
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


class TileGrid:
    """Output tiling + staged, chunk-ordered WG enumeration for one device.

    Parameters
    ----------
    shape:
        the (possibly TP-sliced) GEMM problem.
    kernel:
        macro-tile / WF geometry of the BLAS kernel.
    n_cus:
        compute units available; a stage holds ``kernel.wgs_per_cu * n_cus``
        workgroups.
    n_chunks:
        ring chunking of the output (1 = no fusion).
    chunk_offset:
        this device's rank in the ring; WGs are enumerated chunk-by-chunk
        starting at chunk ``(rank+1) mod n_chunks`` and ending with the
        device's own chunk — the paper's staggered schedule.
    stagger:
        set False to disable staggering (ablation): every device then
        produces chunk 0 first.
    production_order:
        explicit chunk production order (a permutation of
        ``range(n_chunks)``), normally taken from a
        :class:`~repro.collectives.plan.CollectivePlan`; when omitted the
        grid derives the flat-ring staggered order from ``chunk_offset``.
    """

    def __init__(self, shape: GEMMShape, kernel: GEMMKernelConfig,
                 n_cus: int, n_chunks: int = 1, chunk_offset: int = 0,
                 stagger: bool = True,
                 production_order: Optional[List[int]] = None):
        if n_cus < 1:
            raise ValueError("need at least one CU")
        if n_chunks < 1:
            raise ValueError("n_chunks must be >= 1")
        self.shape = shape
        self.kernel = kernel
        self.n_cus = n_cus
        self.n_chunks = n_chunks
        self.chunk_offset = chunk_offset if stagger else 0
        self.stagger = stagger
        if production_order is not None:
            order = list(production_order)
            if sorted(order) != list(range(n_chunks)):
                raise ValueError(
                    f"production_order {order} is not a permutation of "
                    f"range({n_chunks})")
            self._production_order: Optional[List[int]] = order
        else:
            self._production_order = None

        self.tiles_m = math.ceil(shape.m / kernel.macro_tile_m)
        self.tiles_n = math.ceil(shape.n / kernel.macro_tile_n)
        self.n_wgs = self.tiles_m * self.tiles_n
        if self.n_wgs < n_chunks:
            raise ValueError(
                f"output has {self.n_wgs} workgroup tiles; cannot chunk "
                f"{n_chunks} ways — shrink the chunk count or the tile"
            )
        self.wgs_per_stage = kernel.wgs_per_stage(n_cus)
        self.n_stages = math.ceil(self.n_wgs / self.wgs_per_stage)
        self.wg_tile_bytes = (
            kernel.macro_tile_m * kernel.macro_tile_n * shape.element_bytes
        )
        self.wf_tile_bytes = self.wg_tile_bytes // kernel.wfs_per_wg

        #: chunk -> (first canonical wg id, wg count); contiguous in the
        #: row-major WG order, so chunks are contiguous address ranges.
        counts = split_evenly(self.n_wgs, n_chunks)
        self.chunk_ranges: List[Tuple[int, int]] = []
        start = 0
        for count in counts:
            self.chunk_ranges.append((start, count))
            start += count

        self._stages: List[StageInfo] = self._build_stages()

    # -- chunk helpers ---------------------------------------------------

    def chunk_of_wg(self, wg_id: int) -> int:
        for chunk_id, (start, count) in enumerate(self.chunk_ranges):
            if start <= wg_id < start + count:
                return chunk_id
        raise ValueError(f"wg id {wg_id} out of range")

    def chunk_wgs(self, chunk_id: int) -> List[int]:
        start, count = self.chunk_ranges[chunk_id]
        return list(range(start, start + count))

    def chunk_bytes_total(self, chunk_id: int) -> int:
        _start, count = self.chunk_ranges[chunk_id]
        return count * self.wg_tile_bytes

    def chunk_order(self) -> List[int]:
        """Chunks in this device's production order (Section 4.4)."""
        if self._production_order is not None:
            return list(self._production_order)
        if not self.stagger or self.n_chunks == 1:
            return list(range(self.n_chunks))
        # Import at call time: the plan module imports ``split_evenly``
        # from here at module scope.
        from repro.collectives.plan import ring_production_order
        return ring_production_order(self.n_chunks, self.chunk_offset)

    # -- WG enumeration ----------------------------------------------------

    def wg_sequence(self) -> Iterator[Tuple[int, int, int, int]]:
        """Yield ``(wg_id, tile_row, tile_col, chunk_id)`` in device order.

        ``wg_id`` is the canonical row-major id (shared across devices so
        Tracker tags agree); the *order* of enumeration is chunk-staggered.
        """
        for chunk_id in self.chunk_order():
            start, count = self.chunk_ranges[chunk_id]
            for wg_id in range(start, start + count):
                tile_row, tile_col = divmod(wg_id, self.tiles_n)
                yield wg_id, tile_row, tile_col, chunk_id

    def wf_tiles(self, wg_id: int, chunk_id: int) -> List[WavefrontTile]:
        return [
            WavefrontTile(wg_id, wf_id, self.wf_tile_bytes, chunk_id)
            for wf_id in range(self.kernel.wfs_per_wg)
        ]

    # -- stages ------------------------------------------------------------

    def _build_stages(self) -> List[StageInfo]:
        stages: List[StageInfo] = []
        seen_rows: set[int] = set()
        batch: List[Tuple[int, int, int, int]] = []

        def flush(index: int) -> None:
            chunk_bytes: Dict[int, int] = {}
            new_rows = 0
            cols = set()
            wg_ids = []
            for wg_id, tile_row, tile_col, chunk_id in batch:
                wg_ids.append(wg_id)
                chunk_bytes[chunk_id] = (
                    chunk_bytes.get(chunk_id, 0) + self.wg_tile_bytes
                )
                cols.add(tile_col)
                if tile_row not in seen_rows:
                    seen_rows.add(tile_row)
                    new_rows += 1
            stages.append(StageInfo(
                index=index,
                wg_ids=tuple(wg_ids),
                chunk_bytes=chunk_bytes,
                new_tile_rows=new_rows,
                touched_cols=len(cols),
            ))

        index = 0
        for item in self.wg_sequence():
            batch.append(item)
            if len(batch) == self.wgs_per_stage:
                flush(index)
                batch = []
                index += 1
        if batch:
            flush(index)
        return stages

    @property
    def stages(self) -> List[StageInfo]:
        return self._stages

    def stage_for_chunk_completion(self, chunk_id: int) -> int:
        """Index of the stage whose end completes ``chunk_id``."""
        last = -1
        for stage in self._stages:
            if chunk_id in stage.chunk_bytes:
                last = stage.index
        if last < 0:
            raise ValueError(f"chunk {chunk_id} never produced")
        return last

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TileGrid {self.shape.m}x{self.shape.n} tiles="
            f"{self.tiles_m}x{self.tiles_n} stages={self.n_stages} "
            f"chunks={self.n_chunks}>"
        )
