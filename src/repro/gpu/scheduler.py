"""Cross-device workgroup scheduling helpers.

The ring-fused schedule needs each device to produce output chunks in its
own staggered order (Section 4.4).  :func:`build_staggered_grids` builds
one :class:`~repro.gpu.wavefront.TileGrid` per device, offset by ring
rank, so device ``d`` generates chunk ``(d+1) mod N`` first and its own
chunk last — exactly when the ring needs each chunk.
"""

from __future__ import annotations

from typing import List

from repro.config import SystemConfig
from repro.gpu.wavefront import GEMMShape, TileGrid


def build_staggered_grids(system: SystemConfig, shape: GEMMShape,
                          n_chunks: int, stagger: bool = True,
                          n_cus: int = 0) -> List[TileGrid]:
    """One per-device grid with ring-staggered chunk production order."""
    cus = n_cus or system.compute.n_cus
    return [
        TileGrid(shape, system.gemm, n_cus=cus, n_chunks=n_chunks,
                 chunk_offset=rank, stagger=stagger)
        for rank in range(system.n_gpus)
    ]


def production_schedule(grid: TileGrid) -> List[int]:
    """Stage index at which each chunk (by id) completes on this device."""
    return [
        grid.stage_for_chunk_completion(chunk_id)
        for chunk_id in range(grid.n_chunks)
    ]
