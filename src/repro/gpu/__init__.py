"""GPU compute model: CUs, workgroups/wavefronts, tiled GEMM, DMA.

The model follows the paper's execution abstraction (Section 2.5):
a tiled GEMM executes as *stages* of workgroups, each workgroup's
wavefronts producing complete output tiles; sliced (tensor-parallel)
GEMMs shrink the dot-product (K) dimension but keep the same output
tiling, WG count, and stage structure (Figure 5).
"""

from repro.gpu.wavefront import GEMMShape, StageInfo, TileGrid, WavefrontTile
from repro.gpu.gemm import GEMMKernel, GEMMResult, LocalWriteSink, StoreSink
from repro.gpu.dma import DMACommand, DMAEngine
from repro.gpu.gpu import GPU
from repro.gpu.scheduler import build_staggered_grids, production_schedule

__all__ = [
    "DMACommand",
    "DMAEngine",
    "GEMMKernel",
    "GEMMResult",
    "GEMMShape",
    "GPU",
    "LocalWriteSink",
    "StageInfo",
    "StoreSink",
    "TileGrid",
    "WavefrontTile",
    "build_staggered_grids",
    "production_schedule",
]
