"""System configuration — the Python rendering of the paper's Table 1.

All defaults reproduce the simulated system of the paper:

* 8/16 GPUs on a ring, 150 GB/s per-direction link bandwidth, 500 ns link
  latency;
* 80 CUs @ 1.4 GHz per GPU, 16 MiB LLC;
* HBM2 @ 1 TB/s with near-memory-compute (NMC) op-and-store whose
  column-to-column delay is doubled (CCDWL = 2 x CCDL).

Everything an experiment can vary is a field on one of these frozen
dataclasses; experiments construct variants with ``dataclasses.replace``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro import units


class _SerializableConfig:
    """Mixin: stable dict round-tripping for the frozen config dataclasses.

    ``to_dict`` recurses via ``dataclasses.asdict`` and yields only
    JSON-serializable values; classes with tuple-valued or nested fields
    override ``from_dict`` to restore the exact constructor types.
    """

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]):
        return cls(**data)

    def content_hash(self) -> str:
        """Stable hex digest of the full configuration *content*.

        Two configs constructed independently but holding equal values
        hash identically, which makes the digest safe to use as a cache
        key (unlike ``hash()``, which is also process-seeded for strings).
        """
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ComputeConfig(_SerializableConfig):
    """Per-GPU compute resources (Table 1, "Per-GPU Config")."""

    n_cus: int = 80
    clock_ghz: float = 1.4
    threads_per_cu: int = 2048
    #: peak matrix FLOPs (FP16 FMA counted as 2 FLOPs) per CU per cycle.
    flops_per_cu_per_cycle: float = 1024.0
    #: fraction of peak a well-tuned BLAS GEMM sustains.
    gemm_efficiency: float = 0.85
    #: element-wise reduction throughput a single CU sustains (bytes moved
    #: per cycle, reads + writes).  Calibrated so a ring-RS restricted to
    #: 8 CUs slows ~1.4x versus all 80 CUs (the paper's Figure 6 study).
    reduce_bytes_per_cu_per_cycle: float = 14.0

    @property
    def peak_flops_per_ns(self) -> float:
        """Peak FP16 throughput in FLOP/ns (== TFLOP/s / 1000 * 1000)."""
        return self.n_cus * self.flops_per_cu_per_cycle * self.clock_ghz

    @property
    def sustained_gemm_flops_per_ns(self) -> float:
        return self.peak_flops_per_ns * self.gemm_efficiency

    def reduce_bandwidth(self, n_cus: Optional[int] = None) -> float:
        """Sustained element-wise reduce bandwidth (bytes/ns) on ``n_cus``."""
        cus = self.n_cus if n_cus is None else n_cus
        return cus * self.reduce_bytes_per_cu_per_cycle * self.clock_ghz


@dataclass(frozen=True)
class MemoryConfig(_SerializableConfig):
    """LLC + HBM parameters (Table 1)."""

    llc_bytes: int = 16 * units.MiB
    llc_banks: int = 64
    hbm_bandwidth: float = units.tbps(1.0)  # bytes/ns
    #: number of *simulated* memory channels.  The paper's HBM2 has more
    #: physical channels; we aggregate them (DESIGN.md section 2) — what
    #: matters for T3 is per-queue arbitration dynamics, not channel count.
    n_channels: int = 8
    dram_queue_depth: int = 32
    #: fraction of peak pin bandwidth HBM sustains under real access mixes
    #: (refresh, bank conflicts, read/write turnaround).
    dram_efficiency: float = 0.65
    #: CCDWL / CCDL ratio: NMC op-and-store costs twice the column delay.
    nmc_ccdwl_factor: float = 2.0
    #: fraction of LLC effectively available to GEMM *inputs* when output
    #: writes are cached (baseline) vs bypassed to DRAM (T3, Section 6.2).
    llc_input_fraction_cached_writes: float = 0.5
    llc_input_fraction_bypassed_writes: float = 1.0
    #: LLC reuse model (see repro.memory.cache): hit probability for a
    #: buffer revisited across GEMM stages is (budget / working_set) **
    #: ``llc_hit_exponent``, and re-reads happen for at most
    #: ``llc_reuse_window_stages`` subsequent stages (beyond that, kernel
    #: K-blocking captures the reuse).
    llc_hit_exponent: float = 1.0
    llc_reuse_window_stages: int = 8

    @property
    def effective_bandwidth(self) -> float:
        """Sustained HBM bandwidth (bytes/ns) under real access mixes."""
        return self.hbm_bandwidth * self.dram_efficiency

    @property
    def channel_bandwidth(self) -> float:
        return self.effective_bandwidth / self.n_channels


@dataclass(frozen=True)
class LinkConfig(_SerializableConfig):
    """Inter-GPU ring interconnect (Table 1).

    The paper's node supports a "150 GB/s bi-directional" ring; each
    direction therefore sustains 75 GB/s, which is what a ring collective
    step is limited by.
    """

    #: per-direction link bandwidth in bytes/ns.
    bandwidth: float = units.gbps(75.0)
    latency_ns: float = 500.0

    @property
    def bidirectional_bandwidth(self) -> float:
        return 2.0 * self.bandwidth


@dataclass(frozen=True)
class GEMMKernelConfig(_SerializableConfig):
    """Parametric tiled-GEMM kernel shape (Section 2.5 / Figure 5).

    Each workgroup (WG) produces one complete ``macro_tile_m x macro_tile_n``
    output tile; the WG's ``wfs_per_wg`` wavefronts each produce a
    contiguous ``wf_tile`` slice of it, matching the tiled BLAS kernels the
    paper evaluates (and assumes for Tracker bookkeeping).
    """

    macro_tile_m: int = 128
    macro_tile_n: int = 128
    wfs_per_wg: int = 4
    wgs_per_cu: int = 1
    element_bytes: int = units.FP16_BYTES

    @property
    def wf_tile_elems(self) -> int:
        return (self.macro_tile_m * self.macro_tile_n) // self.wfs_per_wg

    def wgs_per_stage(self, n_cus: int) -> int:
        return n_cus * self.wgs_per_cu


@dataclass(frozen=True)
class TrackerConfig(_SerializableConfig):
    """T3's track & trigger hardware structure (Section 4.2.1)."""

    n_entries: int = 256
    ways: int = 8
    wf_id_bits: int = 3  # max 8 WFs per WG
    #: Tracker storage reported by the paper.
    size_bytes: int = 19 * units.KiB


@dataclass(frozen=True)
class MCAConfig(_SerializableConfig):
    """Communication-aware memory-controller arbitration (Section 4.5)."""

    #: candidate DRAM-queue occupancy thresholds; MCA picks one per kernel
    #: based on the kernel's observed memory intensity.
    occupancy_thresholds: Tuple[Optional[int], ...] = (5, 10, 30, None)
    #: memory-intensity breakpoints (fraction of peak DRAM bandwidth the
    #: compute kernel demands) mapping to the thresholds above.
    intensity_breakpoints: Tuple[float, ...] = (0.75, 0.5, 0.25)
    #: cycles-since-last-communication-issue after which the communication
    #: stream is force-prioritized to avoid starvation.
    starvation_limit_ns: float = 2000.0

    def __post_init__(self) -> None:
        # The intensity->threshold mapping walks breakpoints and thresholds
        # pairwise and falls through to the *last* threshold, so exactly
        # one more threshold than breakpoints must exist.  A silent length
        # mismatch either dropped candidate thresholds or made some
        # breakpoints unreachable.
        if len(self.occupancy_thresholds) != \
                len(self.intensity_breakpoints) + 1:
            raise ValueError(
                f"MCAConfig needs exactly one more occupancy threshold "
                f"than intensity breakpoint (the last threshold is the "
                f"below-all-breakpoints fallback); got "
                f"{len(self.occupancy_thresholds)} thresholds for "
                f"{len(self.intensity_breakpoints)} breakpoints")
        if any(b2 >= b1 for b1, b2 in zip(self.intensity_breakpoints,
                                          self.intensity_breakpoints[1:])):
            raise ValueError(
                "MCAConfig intensity_breakpoints must be strictly "
                f"decreasing (first match wins); got "
                f"{self.intensity_breakpoints}")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MCAConfig":
        data = dict(data)
        data["occupancy_thresholds"] = tuple(data["occupancy_thresholds"])
        data["intensity_breakpoints"] = tuple(data["intensity_breakpoints"])
        return cls(**data)


#: overlap-policy kinds selectable through configuration.  "recorded"
#: additionally needs a decision-log path (``decision_log_path``).
OVERLAP_POLICY_KINDS = ("static", "adaptive", "recorded")

_DEFAULT_POLICY_KIND = "static"


def set_default_overlap_policy(kind: str) -> str:
    """Set the process-wide default overlap-policy kind.

    Newly constructed :class:`OverlapPolicyConfig` (and therefore
    :class:`SystemConfig`) instances pick this up via the ``kind``
    default factory — the hook the runner's ``--policy`` flag uses so
    every experiment module sees the selection without flag plumbing.
    Returns the previous default so callers can restore it.
    """
    if kind not in OVERLAP_POLICY_KINDS:
        raise ValueError(f"unknown overlap policy kind {kind!r}; pick "
                         f"from {OVERLAP_POLICY_KINDS}")
    global _DEFAULT_POLICY_KIND
    previous = _DEFAULT_POLICY_KIND
    _DEFAULT_POLICY_KIND = kind
    return previous


def default_overlap_policy_kind() -> str:
    return _DEFAULT_POLICY_KIND


@dataclass(frozen=True)
class OverlapPolicyConfig(_SerializableConfig):
    """Selection + tuning of the overlap-policy layer (``repro.policy``).

    Every field is a scalar so the config stays hashable and lands in
    the sweep-cache key via ``SystemConfig.to_dict`` — two runs that
    differ only in policy never collide in the cache.  The controller
    knobs only matter for ``kind="adaptive"``; see ``docs/adaptive.md``
    for the controller design they parameterize.
    """

    kind: str = field(default_factory=default_overlap_policy_kind)
    #: EWMA smoothing factor for the deferral / occupancy signals.
    ewma_alpha: float = 0.1
    #: minimum time between threshold retunes at one arbiter site.
    retune_interval_ns: float = 1000.0
    #: gate-deferral EWMA above which the occupancy threshold is relaxed
    #: one step (comm is being held back while compute is absent).
    relax_watermark: float = 0.15
    #: gate-deferral EWMA below which a relaxed threshold decays one step
    #: back toward the static per-kernel pick.
    tighten_watermark: float = 0.02
    #: max inter-slice gap the DMA pacer may insert (0 disables pacing).
    pacing_max_gap_ns: float = 0.0
    #: per-GPU occupancy-fraction EWMA above which pacing kicks in.
    pacing_occupancy_watermark: float = 0.85
    #: max trigger-fire delay under tracker pressure (0 = fire eagerly).
    eagerness_max_delay_ns: float = 0.0
    #: capture a replayable DecisionLog of every tunable decision.
    record_decisions: bool = False
    #: decision log to replay (required for ``kind="recorded"``).
    decision_log_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in OVERLAP_POLICY_KINDS:
            raise ValueError(f"unknown overlap policy kind {self.kind!r}; "
                             f"pick from {OVERLAP_POLICY_KINDS}")
        if self.kind == "recorded" and not self.decision_log_path:
            raise ValueError("kind='recorded' needs a decision_log_path "
                             "to replay")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.retune_interval_ns <= 0:
            raise ValueError("retune_interval_ns must be positive")
        if not 0.0 <= self.tighten_watermark < self.relax_watermark <= 1.0:
            raise ValueError(
                "watermarks must satisfy 0 <= tighten < relax <= 1; got "
                f"tighten={self.tighten_watermark}, "
                f"relax={self.relax_watermark}")
        if self.pacing_max_gap_ns < 0:
            raise ValueError("pacing_max_gap_ns cannot be negative")
        if not 0.0 <= self.pacing_occupancy_watermark < 1.0:
            raise ValueError("pacing_occupancy_watermark must be in [0, 1)")
        if self.eagerness_max_delay_ns < 0:
            raise ValueError("eagerness_max_delay_ns cannot be negative")


@dataclass(frozen=True)
class FidelityConfig(_SerializableConfig):
    """Event-granularity knobs for the discrete-event simulator.

    ``quantum_bytes`` is the size of one simulated memory transaction
    (Accel-Sim models 32B sectors; we batch to keep Python fast — see
    DESIGN.md section 2).
    """

    quantum_bytes: int = 64 * units.KiB
    #: operand-fetch waves per GEMM stage: real kernels double-buffer at
    #: K-slab granularity, so reads are due shortly before the compute
    #: that consumes them.  More waves = tighter coupling = more exposure
    #: to memory contention (the Figure 17 stall mechanism).
    gemm_waves_per_stage: int = 16
    #: record (time, bytes) samples for traffic timelines (Figure 17).
    record_traffic: bool = False


@dataclass(frozen=True)
class SystemConfig(_SerializableConfig):
    """A complete simulated multi-GPU node."""

    n_gpus: int = 8
    compute: ComputeConfig = field(default_factory=ComputeConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    gemm: GEMMKernelConfig = field(default_factory=GEMMKernelConfig)
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    mca: MCAConfig = field(default_factory=MCAConfig)
    fidelity: FidelityConfig = field(default_factory=FidelityConfig)
    policy: OverlapPolicyConfig = field(default_factory=OverlapPolicyConfig)

    def __post_init__(self) -> None:
        if self.n_gpus < 2:
            raise ValueError("a multi-GPU system needs at least 2 GPUs")

    def replace(self, **kwargs) -> "SystemConfig":
        """Shallow ``dataclasses.replace`` convenience."""
        return dataclasses.replace(self, **kwargs)

    def with_fidelity(self, **kwargs) -> "SystemConfig":
        return self.replace(fidelity=dataclasses.replace(self.fidelity, **kwargs))

    def with_policy(self, kind: Optional[str] = None,
                    **kwargs) -> "SystemConfig":
        """Overlap-policy variant (``with_fidelity``'s sibling)."""
        if kind is not None:
            kwargs["kind"] = kind
        return self.replace(policy=dataclasses.replace(self.policy, **kwargs))

    def scaled_compute(self, factor: float) -> "SystemConfig":
        """The paper's GPU-2X-CU future-hardware study (Section 7.5)."""
        new_cus = int(round(self.compute.n_cus * factor))
        return self.replace(
            compute=dataclasses.replace(self.compute, n_cus=new_cus)
        )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SystemConfig":
        return cls(
            n_gpus=data["n_gpus"],
            compute=ComputeConfig.from_dict(data["compute"]),
            memory=MemoryConfig.from_dict(data["memory"]),
            link=LinkConfig.from_dict(data["link"]),
            gemm=GEMMKernelConfig.from_dict(data["gemm"]),
            tracker=TrackerConfig.from_dict(data["tracker"]),
            mca=MCAConfig.from_dict(data["mca"]),
            fidelity=FidelityConfig.from_dict(data["fidelity"]),
            # Payloads written before the policy layer existed lack the
            # key; restore them with the static-paper default.
            policy=(OverlapPolicyConfig.from_dict(data["policy"])
                    if "policy" in data else OverlapPolicyConfig("static")),
        )


def table1_system(n_gpus: int = 8, **fidelity_kwargs) -> SystemConfig:
    """The paper's Table 1 system, with optional fidelity overrides."""
    cfg = SystemConfig(n_gpus=n_gpus)
    if fidelity_kwargs:
        cfg = cfg.with_fidelity(**fidelity_kwargs)
    return cfg
