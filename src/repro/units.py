"""Units and conversions.

Conventions used across the whole library:

* **time** is ``float`` nanoseconds,
* **sizes** are bytes,
* **bandwidth** is bytes per nanosecond (1 B/ns == 1 GB/s),
* **frequency** is GHz (cycles per nanosecond).

Keeping one unit system everywhere avoids the classic simulator bug of
mixing cycles at different clock domains; clock-domain conversion happens
exactly once, at configuration time.
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

NS = 1.0
US = 1_000.0
MS = 1_000_000.0
S = 1_000_000_000.0

FP16_BYTES = 2
FP32_BYTES = 4


def gbps(value: float) -> float:
    """Gigabytes/second -> bytes/nanosecond (they are numerically equal)."""
    return float(value)


def tbps(value: float) -> float:
    """Terabytes/second -> bytes/nanosecond."""
    return float(value) * 1000.0


def cycles_to_ns(cycles: float, clock_ghz: float) -> float:
    """Convert a cycle count at ``clock_ghz`` into nanoseconds."""
    if clock_ghz <= 0:
        raise ValueError("clock must be positive")
    return cycles / clock_ghz


def ns_to_cycles(ns: float, clock_ghz: float) -> float:
    if clock_ghz <= 0:
        raise ValueError("clock must be positive")
    return ns * clock_ghz


def pretty_bytes(nbytes: float) -> str:
    """Human-readable byte count (binary units)."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.2f} {unit}" if unit != "B" else f"{value:.0f} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def pretty_time(ns: float) -> str:
    """Human-readable duration."""
    if ns < US:
        return f"{ns:.1f} ns"
    if ns < MS:
        return f"{ns / US:.2f} us"
    if ns < S:
        return f"{ns / MS:.2f} ms"
    return f"{ns / S:.3f} s"
