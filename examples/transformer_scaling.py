#!/usr/bin/env python
"""How much does serialized all-reduce cost a Transformer — and how much
does T3 win back?  (Figures 4 and 19 as a workflow.)

For each model / tensor-parallel degree this script:

1. builds the end-to-end iteration breakdown (training + prompt phases),
2. reports the share of time in sliced-GEMM->AR groups and in pure
   communication,
3. simulates the four AR-feeding sub-layers under T3-MCA (token-scaled),
4. projects the end-to-end speedup the paper's Section 5.1.2 way.

Run:  python examples/transformer_scaling.py [model-name]
"""

import sys

from repro.config import table1_system
from repro.experiments.sublayer_sweep import run_case
from repro.models import zoo
from repro.models.endtoend import (
    Phase,
    apply_sublayer_speedups,
    iteration_breakdown,
)


def analyse(model, tp: int) -> None:
    system = table1_system(n_gpus=tp)
    print(f"\n--- {model.name} @ TP={tp} "
          f"({model.n_parameters / 1e9:.0f}B params) ---")

    speedups = {}
    for name in ("OP", "FC-2", "FC-1", "IP"):
        suite = run_case(model.sublayer(name, tp), fast=True)
        speedups[name] = suite.speedup("T3-MCA")
        print(f"  sub-layer {name:5}: GEMM {suite.gemm_time / 1e3:7.0f}us  "
              f"RS {suite.rs_time / 1e3:7.0f}us  "
              f"T3-MCA speedup {speedups[name]:.2f}x")

    for phase in (Phase.TRAINING, Phase.PROMPT):
        breakdown = iteration_breakdown(model, tp, system, phase)
        groups = (("OP", "FC-2", "FC-1", "IP") if phase is Phase.TRAINING
                  else ("OP", "FC-2"))
        end_to_end = apply_sublayer_speedups(
            breakdown, {g: speedups[g] for g in groups})
        print(f"  {phase.value:9}: iteration {breakdown.total_time() / 1e6:7.1f}ms, "
              f"comm {breakdown.comm_fraction():5.1%}, "
              f"sliced {breakdown.sliced_fraction():5.1%} "
              f"-> T3-MCA end-to-end {end_to_end:.3f}x")


def main() -> None:
    wanted = sys.argv[1] if len(sys.argv) > 1 else None
    models = [zoo.by_name(wanted)] if wanted else zoo.small_models()
    for model in models:
        for tp in zoo.TP_SETUPS[model.name]:
            analyse(model, tp)


if __name__ == "__main__":
    main()
