#!/usr/bin/env python
"""Export a fused GEMM+reduce-scatter run as a Chrome/Perfetto trace.

Writes ``t3_fused_trace.json``; open it at https://ui.perfetto.dev or in
``chrome://tracing`` to see the Figure-7 choreography live: four GEMMs
running staggered, Tracker-triggered DMA commands chasing chunk
completions down the ring, every link serialization, and (optionally)
each DRAM service slot.

Run:  python examples/export_trace.py [--dram]
"""

import sys

from repro import table1_system
from repro.analysis.trace import TraceRecorder
from repro.gpu.wavefront import GEMMShape
from repro.interconnect.topology import RingTopology
from repro.sim import Environment
from repro.t3.fusion import FusedGEMMRS

OUT = "t3_fused_trace.json"


def main() -> None:
    record_dram = "--dram" in sys.argv
    env = Environment()
    env.trace = TraceRecorder(record_dram=record_dram)

    system = table1_system(n_gpus=4).with_fidelity(quantum_bytes=32 * 1024)
    topo = RingTopology(env, system)
    fused = FusedGEMMRS(topo, GEMMShape(2048, 1024, 512, name="demo"),
                        n_cus=16)
    result = fused.run()

    env.trace.save(OUT)
    print(f"fused GEMM+RS finished in {result.duration / 1e3:.1f} us")
    print(f"trace spans by category: {env.trace.summary()}")
    print(f"wrote {OUT} — open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
