#!/usr/bin/env python
"""Expert parallelism: fuse the MoE all-to-all with its producer GEMM.

Mixture-of-experts layers route each token to an expert on another GPU:
after the router GEMM, tokens are exchanged with a serialized all-to-all
(Section 7.2).  With T3 the producer's output address space is
``remote_map``-ed so each expert's token block streams to its GPU as the
GEMM produces it — plain stores, no reduction, no DMA, no CU kernel.

This script runs both versions of a synthetic MoE dispatch on a
fully-connected 8-GPU node and reports the overlap win.

Run:  python examples/moe_all_to_all.py
"""

from repro import table1_system
from repro.collectives.api import ring_ag_time
from repro.gpu.wavefront import GEMMShape
from repro.interconnect.topology import FullyConnectedTopology
from repro.sim import Environment
from repro.t3.fusion import FusedGEMMRS
from repro.units import pretty_time


def main() -> None:
    n_experts = 8
    system = table1_system(n_gpus=n_experts).with_fidelity(
        quantum_bytes=32 * 1024)
    # Router/up-projection GEMM: 8K tokens x 4096 hidden; its output is
    # scattered token-block-by-token-block to the experts.
    shape = GEMMShape(m=2048, n=4096, k=2048, name="moe-dispatch")

    env = Environment()
    topo = FullyConnectedTopology(env, system)
    fused = FusedGEMMRS(topo, shape, collective="all-to-all")
    result = fused.run()

    # Baseline: the GEMM, then a dedicated all-to-all kernel (bandwidth-
    # equivalent to an all-gather of the exchanged volume on this node).
    gemm_alone = result.gemm_duration  # same kernel, fully local writes
    exchanged = shape.output_bytes * (n_experts - 1) // n_experts
    a2a_alone = ring_ag_time(exchanged, system)
    sequential = gemm_alone + a2a_alone

    print(f"experts             : {n_experts}")
    print(f"dispatch GEMM       : [{shape.m} x {shape.k}] @ "
          f"[{shape.k} x {shape.n}]")
    print(f"tokens exchanged    : {exchanged / 2**20:.0f} MiB per GPU\n")
    print(f"sequential (GEMM then all-to-all): {pretty_time(sequential)}")
    print(f"T3 fused (stores stream to experts): "
          f"{pretty_time(result.duration)}")
    print(f"overlap speedup: {sequential / result.duration:.2f}x")

    gpu = topo.gpus[0]
    print("\nper-GPU ledger (note: zero collective reads, zero DMA):")
    for key, value in sorted(gpu.mc.counters.as_dict().items()):
        print(f"  {key:12} {value / 2**20:8.1f} MiB")
    print(f"  dma commands: {gpu.dma.programmed_commands}")


if __name__ == "__main__":
    main()
