#!/usr/bin/env python
"""Quickstart: speed up one tensor-parallel sub-layer with T3.

Builds the paper's Table-1 system (8 GPUs on a 150 GB/s ring), takes
T-NLG's FC-2 sub-layer sliced 8 ways, and compares Sequential execution
(GEMM -> ring reduce-scatter -> ring all-gather) against T3's fused
GEMM-RS with track & trigger, NMC reductions, and MCA arbitration.

Run:  python examples/quickstart.py
"""

from repro import table1_system
from repro.experiments.common import run_sublayer_suite, scaled_shape
from repro.models import zoo
from repro.units import pretty_time


def main() -> None:
    system = table1_system(n_gpus=8)
    sublayer = zoo.t_nlg().sublayer("FC-2", tp=8)

    # Scale the token dimension down 4x so this demo runs in seconds;
    # drop the scaling for paper-scale shapes.
    shape = scaled_shape(sublayer.gemm, scale=4)
    print(f"sub-layer : {sublayer.label}")
    print(f"GEMM      : [{shape.m} x {shape.k}] @ [{shape.k} x {shape.n}]")
    print(f"all-reduce: {shape.output_bytes / 2**20:.0f} MiB over "
          f"{system.n_gpus} GPUs\n")

    suite = run_sublayer_suite(system, shape, label=sublayer.label)

    print(f"{'configuration':26} {'time':>12} {'speedup':>9}")
    for name, time_ns in suite.times.items():
        print(f"{name:26} {pretty_time(time_ns):>12} "
              f"{suite.speedup(name):>8.2f}x")

    print(f"\nisolated parts: GEMM {pretty_time(suite.gemm_time)}, "
          f"RS {pretty_time(suite.rs_time)}, AG {pretty_time(suite.ag_time)}")
    print(f"DRAM traffic saved by T3-MCA: "
          f"{suite.data_movement_reduction('T3-MCA'):.1%}")


if __name__ == "__main__":
    main()
