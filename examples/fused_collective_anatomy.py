#!/usr/bin/env python
"""Anatomy of a fused GEMM + reduce-scatter (the paper's Figure 7).

Runs a small fused GEMM-RS on a 4-GPU ring and prints the full
choreography:

* each rank's staggered chunk production order,
* the address-space configuration (remote_map / dma_map routes),
* the pre-programmed DMA commands and when the Tracker fired them,
* Tracker statistics (regions programmed/completed, peak set occupancy),
* the per-GPU DRAM traffic ledger versus the Sequential baseline's
  closed-form expectation.

Run:  python examples/fused_collective_anatomy.py
"""

from repro import table1_system
from repro.gpu.wavefront import GEMMShape
from repro.interconnect.topology import RingTopology
from repro.sim import Environment
from repro.t3.fusion import FusedGEMMRS
from repro.units import pretty_bytes, pretty_time


def main() -> None:
    system = table1_system(n_gpus=4).with_fidelity(quantum_bytes=16 * 1024)
    shape = GEMMShape(m=1024, n=1024, k=512, name="demo")
    env = Environment()
    topo = RingTopology(env, system)
    fused = FusedGEMMRS(topo, shape, n_cus=8)

    print("=== address-space configuration (Figure 12) ===")
    for rank, config in enumerate(fused.address_configs):
        routes = ", ".join(
            f"chunk{cid}->{config.route(cid).kind.value}"
            + (f"(gpu{config.route(cid).dst_gpu})"
               if config.route(cid).dst_gpu is not None else "")
            for cid in range(system.n_gpus))
        print(f"  GPU{rank}: produces {fused.grids[rank].chunk_order()}; "
              f"{routes}")

    result = fused.run()

    print("\n=== run outcome ===")
    print(f"fused GEMM+RS span: {pretty_time(result.duration)} "
          f"(GEMM alone: {pretty_time(result.gemm_duration)})")
    for rank in sorted(result.per_rank_terminal):
        print(f"  GPU{rank}: own chunk fully reduced at "
              f"{pretty_time(result.per_rank_terminal[rank])}")

    print("\n=== DMA commands (Section 4.2.2) ===")
    for rank, gpu in enumerate(topo.gpus):
        print(f"  GPU{rank}: programmed={gpu.dma.programmed_commands} "
              f"triggered={gpu.dma.triggered_commands} "
              f"moved={pretty_bytes(gpu.dma.bytes_moved)}")

    print("\n=== Tracker statistics (Section 4.2.1) ===")
    for rank, tracker in enumerate(fused.trackers):
        s = tracker.stats
        print(f"  GPU{rank}: regions={s.regions_programmed} "
              f"completed={s.regions_completed} "
              f"peak-ways={s.peak_ways_used}/{system.tracker.ways} "
              f"overflows={s.overflow_events}")

    print("\n=== per-GPU DRAM ledger ===")
    gpu = topo.gpus[0]
    for key, value in sorted(gpu.mc.counters.as_dict().items()):
        print(f"  {key:14} {pretty_bytes(value)}")
    n = system.n_gpus
    chunk = fused.grids[0].chunk_bytes_total(0)
    print(f"\nstructural check: T3 RS reads should be (N-2) chunks = "
          f"{pretty_bytes((n - 2) * chunk)} "
          f"(measured {pretty_bytes(gpu.mc.counters.get('rs.read'))})")


if __name__ == "__main__":
    main()
