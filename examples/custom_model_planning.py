#!/usr/bin/env python
"""Capacity planning for a custom model: pick a TP degree with T3 in mind.

A downstream-user workflow: define your own Transformer, sweep
tensor-parallel degrees, and see (a) whether it fits the node's aggregate
HBM, (b) how much of each iteration serialized communication costs, and
(c) what T3 recovers — the decision the paper's introduction motivates.

Run:  python examples/custom_model_planning.py
"""

from repro.config import table1_system
from repro.experiments.sublayer_sweep import run_case
from repro.models.endtoend import Phase, apply_sublayer_speedups, iteration_breakdown
from repro.models.transformer import TransformerConfig

#: 24 GiB of HBM per GPU (adjust for your parts).
HBM_CAPACITY_PER_GPU = 24 * 2**30


def fits(model: TransformerConfig, tp: int) -> bool:
    """Weights in FP16 + optimizer states (~3x) must fit the TP group."""
    needed = model.n_parameters * 2 * 4
    return needed <= tp * HBM_CAPACITY_PER_GPU


def main() -> None:
    model = TransformerConfig(
        name="my-llm-30b", hidden=6144, n_layers=64,
        seq_len=2048, batch=4,
    )
    print(f"model: {model.name}, {model.n_parameters / 1e9:.0f}B parameters, "
          f"{model.tokens} tokens/iteration\n")

    best = None
    for tp in (4, 8, 16):
        tag = "fits" if fits(model, tp) else "DOES NOT FIT"
        print(f"TP={tp:2d}: weights+optimizer {tag} in "
              f"{tp} x {HBM_CAPACITY_PER_GPU / 2**30:.0f} GiB")
        if not fits(model, tp):
            continue
        system = table1_system(n_gpus=tp)
        breakdown = iteration_breakdown(model, tp, system, Phase.TRAINING)
        speedups = {
            name: run_case(model.sublayer(name, tp), fast=True)
            .speedup("T3-MCA")
            for name in ("OP", "FC-2", "FC-1", "IP")
        }
        gain = apply_sublayer_speedups(breakdown, speedups)
        print(f"       iteration {breakdown.total_time() / 1e6:6.1f}ms, "
              f"comm share {breakdown.comm_fraction():5.1%}, "
              f"T3-MCA end-to-end gain {gain:.3f}x")
        if best is None or gain > best[1]:
            best = (tp, gain)

    if best:
        print(f"\nrecommendation: TP={best[0]} "
              f"(T3-MCA recovers {100 * (best[1] - 1):.1f}% per iteration)")


if __name__ == "__main__":
    main()
