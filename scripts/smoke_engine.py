#!/usr/bin/env python
"""Smoke test for the dual-scheduler engine (the `make smoke-engine` target).

The optimized scheduler's contract is *bit-identical simulation*: it
must fire the same events at the same simulated times in the same order
as the legacy reference scheduler, differing only in host speed.  Three
end-to-end checks on a cheap TP=4 case, each run under both schedulers:

1. **Plain sweep case** — identical simulated times, traffic accounting,
   and rendered suite payload;
2. **Fault-injected case** — a seeded straggler plan with the invariant
   checker attached renders identically under both schedulers (fault
   timing rides the same event order);
3. **Fused run + telemetry** — a fused GEMM-RS run fires the same number
   of engine events, ends at the same simulated time, and records a
   byte-identical metrics snapshot under both schedulers.

Exit status 0 on success; prints a diagnosis and exits 1 otherwise.
"""

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import table1_system                      # noqa: E402
from repro.experiments import sublayer_sweep                # noqa: E402
from repro.experiments.common import _fresh_topology, scaled_shape  # noqa: E402
from repro.faults import FaultPlan                          # noqa: E402
from repro.models import zoo                                # noqa: E402
from repro.obs import MetricsRegistry                       # noqa: E402
from repro.sim.engine import set_default_scheduler          # noqa: E402
from repro.t3.fusion import FusedGEMMRS                     # noqa: E402


def case():
    return zoo.t_nlg().sublayer("OP", 4)


def with_scheduler(name, fn):
    """Run ``fn()`` with ``name`` as the process default scheduler."""
    previous = set_default_scheduler(name)
    try:
        return fn()
    finally:
        set_default_scheduler(previous)


def simulate(faults=None, check_invariants=False):
    suite = sublayer_sweep.simulate_case(
        case(), sublayer_sweep.FAST_SCALE, table1_system(n_gpus=4),
        ["Sequential", "T3-MCA"],
        faults=faults, check_invariants=check_invariants)
    # The canonical rendering: exactly what the sweep cache stores and
    # the results pipeline consumes.
    return json.dumps(suite.to_dict(), sort_keys=True)


def fused_run():
    """One fused GEMM-RS run with telemetry; returns comparable facts."""
    sub = case()
    system = table1_system(n_gpus=sub.tp)
    tiles_n = max(1, sub.gemm.n // system.gemm.macro_tile_n)
    rows_needed = -(-sub.tp // tiles_n)  # ceil
    shape = scaled_shape(sub.gemm, sublayer_sweep.FAST_SCALE,
                         min_m=rows_needed * system.gemm.macro_tile_m)
    registry = MetricsRegistry()
    env, topo = _fresh_topology(system, "mca", obs=registry)
    result = FusedGEMMRS(topo, shape, calibrate_mca=True).run()
    return {
        "events_fired": env.events_fired,
        "now": env.now,
        "duration": result.duration,
        "snapshot": json.dumps(registry.snapshot(), sort_keys=True),
    }


def main() -> int:
    failures = []

    fast = with_scheduler("optimized", simulate)
    reference = with_scheduler("legacy", simulate)
    if fast != reference:
        failures.append("plain sweep case renders differently under the "
                        "optimized scheduler")
    else:
        print(f"OK plain: identical suite payload ({len(fast)} bytes)")

    plan = FaultPlan.straggler(gpu_id=0, factor=1.5, seed=7)
    fast = with_scheduler(
        "optimized", lambda: simulate(faults=plan, check_invariants=True))
    reference = with_scheduler(
        "legacy", lambda: simulate(faults=plan, check_invariants=True))
    if fast != reference:
        failures.append("fault-injected case renders differently under "
                        "the optimized scheduler")
    else:
        print(f"OK faults: identical faulted payload ({len(fast)} bytes)")

    fast = with_scheduler("optimized", fused_run)
    reference = with_scheduler("legacy", fused_run)
    for key in ("events_fired", "now", "duration"):
        if fast[key] != reference[key]:
            failures.append(
                f"fused run {key} diverged: optimized {fast[key]} vs "
                f"legacy {reference[key]}")
    if fast["snapshot"] != reference["snapshot"]:
        failures.append("fused run metrics snapshot diverged between "
                        "schedulers")
    if not any(f.startswith("fused") for f in failures):
        print(f"OK fused: {fast['events_fired']} events, "
              f"{fast['duration']:.0f} ns, identical telemetry snapshot "
              "under both schedulers")

    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("smoke-engine passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
