#!/usr/bin/env python
"""Regenerate every table/figure in one process and save rendered outputs.

Sub-layer sweep cases are shared through the in-process memo *and* the
persistent on-disk cache, so Figures 15, 16, 18 and 19 reuse one sweep
and a re-run of this script re-simulates nothing unless the simulator
sources changed.  Cache misses fan out over ``--jobs`` workers.  Outputs
land in results/<name>.txt and a combined results/all_results.txt.

Usage: python scripts/capture_results.py [--full] [--jobs N]
                                         [--cache-dir DIR] [--no-cache]
"""

import argparse
import pathlib
import time

from repro.experiments import sublayer_sweep
from repro.experiments.runner import (
    EXPERIMENTS,
    add_sweep_arguments,
    configure_sweep,
)

ORDER = [
    "table1", "table2", "table3", "figure4", "figure6", "figure14",
    "figure15", "figure16", "figure16-large", "figure17", "figure18",
    "figure19", "figure20", "fault-sweep", "scaleout", "chaos",
    "adaptive",
]


def main() -> None:
    parser = argparse.ArgumentParser(
        description="capture every table/figure into results[_full]/")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale shapes (slower)")
    add_sweep_arguments(parser)
    args = parser.parse_args()
    configure_sweep(args)

    fast = not args.full
    outdir = pathlib.Path.cwd() / ("results" if fast else "results_full")
    outdir.mkdir(exist_ok=True)
    combined = []
    for name in ORDER:
        started = time.time()
        before = sublayer_sweep.cache_stats().snapshot()
        result = EXPERIMENTS[name](fast=fast)
        sweep = sublayer_sweep.cache_stats().delta(before)
        text = result.render()
        elapsed = time.time() - started
        stamped = f"{text}\n[{name}: {elapsed:.1f}s, fast={fast}]\n"
        (outdir / f"{name}.txt").write_text(stamped)
        combined.append(stamped)
        note = f" (sweep cache: {sweep.render()})" \
            if sweep.hits or sweep.misses else ""
        print(f"done {name} in {elapsed:.1f}s{note}", flush=True)
    (outdir / "all_results.txt").write_text("\n".join(combined))


if __name__ == "__main__":
    main()
