#!/usr/bin/env python
"""Regenerate every table/figure in one process and save rendered outputs.

The sub-layer sweep cache is shared within the process, so Figures 15, 16,
18 and 19 reuse one sweep.  Outputs land in results/<name>.txt and a
combined results/all_results.txt.

Usage: python scripts/capture_results.py [--full]
"""

import pathlib
import sys
import time

from repro.experiments.runner import EXPERIMENTS

ORDER = [
    "table1", "table2", "table3", "figure4", "figure6", "figure14",
    "figure15", "figure16", "figure16-large", "figure17", "figure18",
    "figure19", "figure20",
]


def main() -> None:
    fast = "--full" not in sys.argv
    name = "results" if fast else "results_full"
    outdir = pathlib.Path.cwd() / name
    outdir.mkdir(exist_ok=True)
    combined = []
    for name in ORDER:
        started = time.time()
        result = EXPERIMENTS[name](fast=fast)
        text = result.render()
        elapsed = time.time() - started
        stamped = f"{text}\n[{name}: {elapsed:.1f}s, fast={fast}]\n"
        (outdir / f"{name}.txt").write_text(stamped)
        combined.append(stamped)
        print(f"done {name} in {elapsed:.1f}s", flush=True)
    (outdir / "all_results.txt").write_text("\n".join(combined))


if __name__ == "__main__":
    main()
