#!/usr/bin/env python
"""Smoke test for the persistent sweep cache (the `make smoke-cache` target).

Runs ``python -m repro.experiments.runner figure16`` twice against a
throwaway cache directory and asserts that the second, cache-hit
invocation (a) re-simulates nothing, (b) is substantially faster, and
(c) renders byte-identical figure output.

Exit status 0 on success; prints a diagnosis and exits 1 otherwise.
"""

import os
import pathlib
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
#: the warm run must take at most this fraction of the cold run.
SPEEDUP_FRACTION = 0.5


def rendered_output(stdout: str) -> str:
    """The figure body only — timing/report lines ([...]) vary by design."""
    return "\n".join(line for line in stdout.splitlines()
                     if not line.startswith("["))


def run_once(cache_dir: str) -> tuple[float, str, str]:
    env = dict(os.environ)
    env["REPRO_T3_CACHE_DIR"] = cache_dir
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    started = time.time()
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", "figure16"],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT)
    elapsed = time.time() - started
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        sys.exit(f"runner failed with status {proc.returncode}")
    return elapsed, proc.stdout, rendered_output(proc.stdout)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-t3-smoke-") as cache_dir:
        cold_s, cold_raw, cold_body = run_once(cache_dir)
        print(f"cold run: {cold_s:.1f}s")
        warm_s, warm_raw, warm_body = run_once(cache_dir)
        print(f"warm run: {warm_s:.1f}s")

    failures = []
    if "0 misses, 0 simulated" not in warm_raw:
        failures.append("warm run still simulated cases:\n"
                        + warm_raw.splitlines()[-2])
    if warm_body != cold_body:
        failures.append("rendered output differs between runs")
    if warm_s > cold_s * SPEEDUP_FRACTION:
        failures.append(
            f"warm run not faster: {warm_s:.1f}s vs {cold_s:.1f}s cold "
            f"(need <= {SPEEDUP_FRACTION:.0%})")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"OK: warm run {cold_s / max(warm_s, 1e-9):.0f}x faster, "
              "zero new simulations, byte-identical output")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
