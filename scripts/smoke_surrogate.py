#!/usr/bin/env python
"""Smoke test for the calibrated surrogate (the `make smoke-surrogate`
target).

Three checks on a small synthetic grid, all against an isolated cache
directory so the run is hermetic:

1. **Triage budget** — the triaged sweep scores every case but
   simulates only a bounded subset (anchors + frontier + audit).
2. **Frontier agreement** — full-simulating the *entire* grid (cheap at
   this size; the triage's own simulations are cache hits), the
   predicted frontier must contain a near-best design (simulated
   speedup within 5% of the true grid maximum — the regret bound that
   is the point of a triage) and every frontier pick must beat the
   grid's median simulated speedup.
3. **Audit accuracy** — the audit slice's relative error stays under
   the threshold the bench schema gates on (geomean <= 5%, and no
   single audit case worse than 75%).

Exit status 0 on success, 1 with a diagnostic on any violation.
"""

import pathlib
import statistics
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import sublayer_sweep                 # noqa: E402
from repro.surrogate.grid import synthetic_cases             # noqa: E402

CONFIGS = ["Sequential", "T3", "T3-MCA"]
#: the bench-gated accuracy thresholds.
AUDIT_GEOMEAN_MAX = 0.05
AUDIT_WORST_MAX = 0.75


def fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def main() -> int:
    started = time.time()
    with tempfile.TemporaryDirectory(prefix="smoke-surrogate-") as tmp:
        sublayer_sweep.configure(cache_dir=tmp, disk_cache=True)
        cases = synthetic_cases(n=120, seed=0,
                                hidden=(1024, 2048, 4096),
                                seq_len=(512, 1024),
                                batch=(1, 4, 16), tp=(2, 8))
        result = sublayer_sweep.run_sweep(
            cases=cases, configs=CONFIGS, triage="surrogate",
            triage_options=dict(frontier=6, min_audit=6,
                                audit_fraction=0.0, seed=0))
        print(result.render(top=6))

        # Ground truth: simulate everything (triage picks are cache hits).
        full = sublayer_sweep.run_sweep(cases=cases, configs=CONFIGS)
    true_speedup = [suite.times["Sequential"]
                    / suite.times[result.frontier_config]
                    for suite in full]

    # 1. budget: everything scored, only a bounded subset simulated.
    if result.n_scored != len(cases):
        return fail(f"scored {result.n_scored} of {len(cases)} cases")
    if result.n_simulated >= len(cases):
        return fail("triage simulated the whole grid — no shortcut taken")

    # 2. frontier agreement: the predicted top-K (train anchors included
    # — a predicted winner is a predicted winner however it got
    # simulated) must contain a near-best design and only above-median
    # ones.  Exact rank agreement is NOT required: a speedup is a ratio
    # of two predictions, so mid-pack cases separated by less than the
    # audit error can legitimately swap places; what the triage promises
    # is bounded regret, not a total order.
    k = 6
    ranked = sorted(result.scored, key=lambda c: -c.predicted_speedup)
    predicted_top = {c.index for c in ranked[:k]}
    best = max(true_speedup)
    frontier_best = max(true_speedup[i] for i in predicted_top)
    if frontier_best < 0.95 * best:
        return fail(
            f"the frontier's best simulated speedup {frontier_best:.3f}x "
            f"misses the grid's true best {best:.3f}x by more than 5% — "
            "the surrogate lost the winner")
    median_speedup = statistics.median(true_speedup)
    frontier_floor = min(true_speedup[i] for i in predicted_top)
    if frontier_floor <= median_speedup:
        return fail(
            f"a predicted frontier case simulates at {frontier_floor:.3f}x, "
            f"not above the grid median {median_speedup:.3f}x")

    # 3. audit accuracy.
    geomean = result.audit_stats["geomean_rel"]
    worst = result.audit_stats["max_rel"]
    if result.audit_stats["n"] < 1:
        return fail("audit produced no records")
    if geomean > AUDIT_GEOMEAN_MAX:
        return fail(f"audit geomean relative error {geomean:.2%} exceeds "
                    f"{AUDIT_GEOMEAN_MAX:.0%}")
    if worst > AUDIT_WORST_MAX:
        return fail(f"worst audit relative error {worst:.2%} exceeds "
                    f"{AUDIT_WORST_MAX:.0%}")

    print(f"OK: {result.n_scored} scored, {result.n_simulated} simulated "
          f"({result.simulated_fraction:.1%}), frontier best "
          f"{frontier_best:.3f}x vs true best {best:.3f}x (floor "
          f"{frontier_floor:.3f}x > median {median_speedup:.3f}x), "
          f"audit geomean {geomean:.2%} "
          f"({time.time() - started:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
