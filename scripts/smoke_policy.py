#!/usr/bin/env python
"""Smoke test for the overlap-policy layer (the `make smoke-policy` target).

The policy refactor's contract has two halves:

* **Transparency** — with the default :class:`StaticPaperPolicy`, every
  run is bit-identical to the pre-refactor arbiter: same payloads, same
  engine event counts, same telemetry snapshot.  Checked against an
  inline verbatim copy of the pre-refactor ``MCAPolicy`` (monkeypatched
  into the arbiter module) and against the checked-in results files.
* **Adaptivity is safe and pays** — :class:`AdaptiveMcaPolicy` survives
  a seeded chaos-campaign slice with zero invariant violations, and
  strictly reduces exposed communication time on the degraded-link and
  straggler suites of the ``adaptive`` experiment.

Plus a structural gate: the tunable decision logic must live in
``src/repro/policy/`` only — ``memory/arbiter.py`` may not reimplement
the intensity->threshold mapping or the occupancy comparison, and the
trigger/DMA seams must consult the policy.

Exit status 0 on success; prints a diagnosis and exits 1 otherwise.
"""

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import (                                   # noqa: E402
    MCAConfig,
    set_default_overlap_policy,
    table1_system,
)
from repro.experiments import sublayer_sweep                 # noqa: E402
from repro.experiments.common import (                       # noqa: E402
    _fresh_topology,
    scaled_shape,
)
from repro.memory import arbiter                             # noqa: E402
from repro.memory.arbiter import ArbitrationPolicy           # noqa: E402
from repro.memory.request import Stream                      # noqa: E402
from repro.models import zoo                                 # noqa: E402
from repro.obs import MetricsRegistry                        # noqa: E402
from repro.t3.fusion import FusedGEMMRS                      # noqa: E402


class ReferenceMCAPolicy(ArbitrationPolicy):
    """The pre-refactor MCAPolicy, verbatim (decision logic inline).

    The ctor accepts and ignores the policy-layer wiring arguments so
    ``make_policy`` can construct it unchanged.
    """

    name = "mca"

    def __init__(self, config: MCAConfig, overlap=None, gpu_id=0,
                 channel_id=0):
        self.config = config
        self._threshold = config.occupancy_thresholds[0]
        self._last_comm_issue = 0.0
        self.calibrations = []

    @property
    def threshold(self):
        return self._threshold

    def calibrate(self, memory_intensity: float) -> None:
        if memory_intensity < 0:
            raise ValueError("memory intensity cannot be negative")
        self.calibrations.append(memory_intensity)
        thresholds = self.config.occupancy_thresholds
        for breakpoint_value, threshold in zip(
            self.config.intensity_breakpoints, thresholds
        ):
            if memory_intensity >= breakpoint_value:
                self._threshold = threshold
                return
        self._threshold = thresholds[-1]

    def choose(self, state):
        if state.compute_waiting > 0:
            if (
                state.comm_waiting > 0
                and state.now - self._last_comm_issue
                > self.config.starvation_limit_ns
            ):
                return Stream.COMM
            return Stream.COMPUTE
        if state.comm_waiting > 0 and self._comm_allowed(state):
            return Stream.COMM
        return None

    def _comm_allowed(self, state):
        if self._threshold is None:
            return True
        return state.dram_occupancy < self._threshold

    def on_issue(self, stream, now):
        if stream is Stream.COMM:
            self._last_comm_issue = now


def with_reference_arbiter(fn):
    """Run ``fn()`` with the pre-refactor MCA policy class installed."""
    original = arbiter.MCAPolicy
    arbiter.MCAPolicy = ReferenceMCAPolicy
    try:
        return fn()
    finally:
        arbiter.MCAPolicy = original


def simulate():
    suite = sublayer_sweep.simulate_case(
        zoo.t_nlg().sublayer("OP", 4), sublayer_sweep.FAST_SCALE,
        table1_system(n_gpus=4), ["Sequential", "T3-MCA"])
    return json.dumps(suite.to_dict(), sort_keys=True)


def fused_run():
    """One fused GEMM-RS run with telemetry; returns comparable facts."""
    sub = zoo.t_nlg().sublayer("OP", 4)
    system = table1_system(n_gpus=4)
    tiles_n = max(1, sub.gemm.n // system.gemm.macro_tile_n)
    rows_needed = -(-sub.tp // tiles_n)  # ceil
    shape = scaled_shape(sub.gemm, sublayer_sweep.FAST_SCALE,
                         min_m=rows_needed * system.gemm.macro_tile_m)
    registry = MetricsRegistry()
    env, topo = _fresh_topology(system, "mca", obs=registry)
    result = FusedGEMMRS(topo, shape, calibrate_mca=True).run()
    return {
        "events_fired": env.events_fired,
        "now": env.now,
        "duration": result.duration,
        "snapshot": json.dumps(registry.snapshot(), sort_keys=True),
    }


def check_reference_equivalence(failures):
    """1. StaticPaperPolicy == the pre-refactor inline arbiter, bit for
    bit: suite payload, event count, sim clock, telemetry snapshot."""
    refactored = simulate()
    reference = with_reference_arbiter(simulate)
    if refactored != reference:
        failures.append("static policy's sweep payload differs from the "
                        "pre-refactor arbiter")
    else:
        print(f"OK reference: identical suite payload "
              f"({len(refactored)} bytes)")

    refactored = fused_run()
    reference = with_reference_arbiter(fused_run)
    diverged = [key for key in ("events_fired", "now", "duration")
                if refactored[key] != reference[key]]
    if refactored["snapshot"] != reference["snapshot"]:
        diverged.append("snapshot")
    if diverged:
        failures.append("fused run diverged from the pre-refactor "
                        f"arbiter on: {', '.join(diverged)}")
    else:
        print(f"OK reference: fused run {refactored['events_fired']} "
              f"events, {refactored['duration']:.0f} ns, identical "
              "telemetry snapshot")


def check_results_regenerate(failures):
    """2. Cheap checked-in results regenerate body-identically under the
    Static default (timing stamps aside)."""
    from repro.experiments.runner import EXPERIMENTS
    for name in ("table1", "figure4"):
        rendered = EXPERIMENTS[name](fast=True).render().splitlines()
        target = REPO_ROOT / "results" / f"{name}.txt"
        checked = [line for line in target.read_text().splitlines()
                   if not line.startswith("[")]
        while checked and not checked[-1]:
            checked.pop()
        while rendered and not rendered[-1]:
            rendered.pop()
        if rendered != checked:
            failures.append(f"results/{name}.txt no longer regenerates "
                            "identically under the static default")
        else:
            print(f"OK results: {name} regenerates byte-identically")


def check_no_inline_decisions(failures):
    """3. Decision logic lives in repro.policy only: the consuming
    modules hold the seams, not the policy math."""
    src = REPO_ROOT / "src" / "repro"
    arbiter_text = (src / "memory" / "arbiter.py").read_text()
    for marker in ("dram_occupancy <", "intensity_breakpoints"):
        if marker in arbiter_text:
            failures.append(f"memory/arbiter.py still contains inline "
                            f"decision logic: {marker!r}")
    for path, seam in (("t3/trigger.py", "trigger_fire_delay"),
                       ("gpu/dma.py", "dma_pacing_gap"),
                       ("t3/tracker.py", "observe_tracker_pressure")):
        if seam not in (src / path).read_text():
            failures.append(f"{path} no longer consults the policy seam "
                            f"{seam!r}")
    if not any("decision logic" in f or "policy seam" in f
               for f in failures):
        print("OK structure: no inline decision logic in arbiter.py; "
              "trigger/DMA/tracker seams present")


def check_adaptive_chaos(failures):
    """4. The adaptive policy survives a seeded chaos slice: 100%
    survival, zero invariant violations, zero watchdog hangs."""
    from repro.experiments import chaos
    previous = set_default_overlap_policy("adaptive")
    try:
        result = chaos.run(fast=True, seeds=1)
    finally:
        set_default_overlap_policy(previous)
    summary = result.summary()
    problems = []
    if summary["survival_rate"] < 1.0:
        problems.append(f"survival {summary['survival_rate']:.2f} < 1.0")
    if summary["invariant_violations"]:
        problems.append(
            f"{summary['invariant_violations']} invariant violations")
    if summary["watchdog_hangs"]:
        problems.append(f"{summary['watchdog_hangs']} watchdog hangs")
    if problems:
        failures.append("adaptive chaos slice: " + ", ".join(problems))
    else:
        print(f"OK chaos: adaptive policy survived "
              f"{summary['scenarios']} scenarios, 0 violations, 0 hangs")


def check_adaptive_pays(failures):
    """5. Adaptive strictly reduces exposed communication time on the
    degraded-link and straggler probes."""
    from repro.experiments import adaptive
    result = adaptive.quick_policy_point(fast=True)
    for name in adaptive.FAULT_SUITES:
        static, adapted = result.suite_exposed(name)
        if adapted < static:
            print(f"OK adaptive: {name} exposed comm "
                  f"{static / 1e3:.1f}us -> {adapted / 1e3:.1f}us")
        else:
            failures.append(
                f"adaptive policy does not win on {name}: exposed "
                f"{static:.0f} ns -> {adapted:.0f} ns")


def main() -> int:
    failures = []
    check_reference_equivalence(failures)
    check_results_regenerate(failures)
    check_no_inline_decisions(failures)
    check_adaptive_chaos(failures)
    check_adaptive_pays(failures)
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("smoke-policy passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
