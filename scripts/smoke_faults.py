#!/usr/bin/env python
"""Smoke test for the fault harness (the `make smoke-faults` target).

Three end-to-end properties, on a cheap TP=4 sub-layer case:

1. **Transparency** — an empty :class:`FaultPlan` plus the invariant
   checker leaves results bit-identical to a plain run;
2. **Determinism** — a seeded straggler plan replays identically;
3. **Diagnosability** — a dropped DMA-completion notification becomes a
   ``SimulationError`` carrying the diagnostic dump, not a silent hang.

Exit status 0 on success; prints a diagnosis and exits 1 otherwise.
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import table1_system                      # noqa: E402
from repro.experiments import sublayer_sweep                # noqa: E402
from repro.faults import FaultPlan                          # noqa: E402
from repro.models import zoo                                # noqa: E402
from repro.sim import SimulationError                       # noqa: E402


def simulate(faults=None, check_invariants=False):
    return sublayer_sweep.simulate_case(
        zoo.t_nlg().sublayer("OP", 4), sublayer_sweep.FAST_SCALE,
        table1_system(n_gpus=4), ["Sequential", "T3"],
        faults=faults, check_invariants=check_invariants)


def main() -> int:
    failures = []

    baseline = simulate()
    checked = simulate(faults=FaultPlan(), check_invariants=True)
    if checked.times != baseline.times or checked.traffic != baseline.traffic:
        failures.append("empty plan + invariants changed results: "
                        f"{checked.times} vs {baseline.times}")
    else:
        print(f"OK transparency: {baseline.times}")

    plan = FaultPlan.straggler(gpu_id=0, factor=1.5, seed=7)
    first = simulate(faults=plan, check_invariants=True)
    second = simulate(faults=plan, check_invariants=True)
    if first.times != second.times:
        failures.append("seeded fault plan did not replay identically: "
                        f"{first.times} vs {second.times}")
    elif first.times["T3"] <= baseline.times["T3"]:
        failures.append("straggler plan did not slow the fused run")
    else:
        print(f"OK determinism: straggler replayed at {first.times}")

    try:
        simulate(faults=FaultPlan.dropped_dma(), check_invariants=True)
        failures.append("dropped DMA completion did not fail the run")
    except SimulationError as exc:
        message = str(exc)
        missing = [marker for marker in
                   ("dropped DMA completions", "simulation diagnostic dump",
                    "tracker")
                   if marker not in message]
        if missing:
            failures.append(f"hang diagnosis lacks {missing}: {message}")
        else:
            print("OK diagnosability: dropped completion raised "
                  f"SimulationError ({len(message.splitlines())} dump lines)")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
