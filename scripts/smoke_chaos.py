#!/usr/bin/env python
"""Smoke test for the resilience layer (the `make smoke-chaos` target).

The resilience runtime's contract is *dormant-until-fault*: attaching it
must never change a fault-free simulation, and a faulty one must recover
instead of dying.  Four end-to-end checks on cheap TP=4 cases:

1. **Fault-free byte-identity** — ``simulate_case`` with ``resilience``
   enabled returns bit-identical times and traffic to a plain run, and a
   fused GEMM-RS fires exactly the same number of engine events (the
   runtime registers watches but schedules nothing until armed);
2. **Drop recovery** — a dropped DMA completion kills the bare run
   (diagnosed ``SimulationError``) but the resilient run finishes, with
   at least one re-issued completion on record;
3. **Ladder escalation** — with in-run recovery budgets zeroed, the
   scenario walks RUN -> RETRY -> FALLBACK and still survives via the
   plan-driven Sequential rung;
4. **Mini campaign** — a seeded slice of the chaos campaign survives
   100% with resilience, kills at least one no-response baseline, and
   reports zero invariant violations / watchdog hangs.

Exit status 0 on success; prints a diagnosis and exits 1 otherwise.
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import table1_system                      # noqa: E402
from repro.experiments import chaos, sublayer_sweep         # noqa: E402
from repro.experiments.common import _fresh_topology, scaled_shape  # noqa: E402
from repro.faults import FaultPlan                          # noqa: E402
from repro.models import zoo                                # noqa: E402
from repro.resilience import (                              # noqa: E402
    LadderRung,
    ResiliencePolicy,
)
from repro.sim.engine import SimulationError                # noqa: E402
from repro.t3.fusion import FusedGEMMRS                     # noqa: E402


def case():
    return zoo.t_nlg().sublayer("OP", 4)


def simulate(resilience=None):
    return sublayer_sweep.simulate_case(
        case(), sublayer_sweep.FAST_SCALE, table1_system(n_gpus=4),
        ["Sequential", "T3-MCA"], resilience=resilience)


def fused_run(resilience=False, faults=None):
    """One fused GEMM-RS run; returns (env, result, runtime)."""
    sub = case()
    system = table1_system(n_gpus=sub.tp)
    tiles_n = max(1, sub.gemm.n // system.gemm.macro_tile_n)
    rows_needed = -(-sub.tp // tiles_n)  # ceil
    shape = scaled_shape(sub.gemm, sublayer_sweep.FAST_SCALE,
                         min_m=rows_needed * system.gemm.macro_tile_m)
    env, topo = _fresh_topology(system, "mca", faults=faults,
                                resilience=resilience)
    result = FusedGEMMRS(topo, shape, calibrate_mca=True).run()
    return env, result, env.resilience


def check_identity(failures):
    plain = simulate()
    resilient = simulate(resilience=True)
    if resilient.times != plain.times or \
            resilient.traffic != plain.traffic:
        failures.append("resilience changed fault-free results: "
                        f"{resilient.times} vs {plain.times}")
        return
    env_off, result_off, _ = fused_run(resilience=False)
    env_on, result_on, runtime = fused_run(resilience=True)
    if env_off.events_fired != env_on.events_fired:
        failures.append(
            "resilience changed the fault-free engine event count: "
            f"{env_on.events_fired} vs {env_off.events_fired}")
    elif result_off.duration != result_on.duration:
        failures.append(
            "resilience changed the fault-free fused duration: "
            f"{result_on.duration} vs {result_off.duration}")
    elif runtime.armed or runtime.recoveries:
        failures.append("the runtime armed itself on a fault-free run")
    else:
        print(f"OK identity: {env_off.events_fired} events and "
              f"{result_off.duration:.0f} ns with and without resilience")


def check_drop_recovery(failures):
    plan = FaultPlan.dropped_dma(gpu_id=1, max_events=1, seed=7)
    try:
        fused_run(resilience=False, faults=plan)
        failures.append("a dropped DMA completion did not kill the "
                        "bare run")
        return
    except SimulationError:
        pass
    try:
        _, result, runtime = fused_run(resilience=True, faults=plan)
    except SimulationError as exc:
        failures.append("the resilient run died on a dropped completion: "
                        + str(exc).splitlines()[0])
        return
    if runtime.dma_reissues < 1:
        failures.append("the resilient run survived without re-issuing "
                        "the dropped completion")
        return
    print(f"OK recovery: bare run dies, resilient run finishes in "
          f"{result.duration:.0f} ns ({runtime.summary()})")


def check_ladder(failures):
    """Zeroed in-run budgets force the scenario down the ladder."""
    crippled = ResiliencePolicy(max_reissues_per_command=0,
                                max_restores_per_region=0,
                                max_deadline_extensions=0)
    scenario = chaos.ChaosScenario(
        index=0, kind="dropped-dma", severity="severe",
        topology=chaos.TOPOLOGIES[0], scheduler="T3-MCA", seed=0,
        plan=FaultPlan.dropped_dma(gpu_id=1, max_events=2, seed=11),
        detail="smoke ladder walk")
    system = table1_system(n_gpus=scenario.topology.n_gpus)

    # Monkey-patch-free: re-run the ladder by hand with the crippled
    # policy, mirroring chaos.run_scenario's walk.
    ladder = chaos.ScenarioLadder(max_retries=1)
    current = chaos._attempt_fused(scenario, system, resilience=crippled)
    ladder.settled(LadderRung.RUN, current.survived)
    rung = LadderRung.RUN
    while not current.survived:
        repair = chaos._maybe_repair(current)
        rung = ladder.next_rung(can_repair=repair is not None)
        if rung is LadderRung.DEAD:
            break
        if rung is LadderRung.RETRY:
            current = chaos._attempt_fused(
                scenario, system,
                resilience=crippled.escalated(ladder.retry_attempt))
        elif rung is LadderRung.REPAIR:
            current = chaos._attempt_fused(scenario, system,
                                           resilience=crippled,
                                           plan_override=repair.plan)
        else:
            current = chaos.Attempt(
                ok=True,
                duration=chaos._plan_driven_time(scenario, system))
        ladder.settled(rung, current.survived)
    if not current.survived:
        failures.append("the crippled-policy scenario died instead of "
                        "falling back")
    elif rung is not LadderRung.FALLBACK:
        failures.append(f"expected the FALLBACK rung, got {rung.value} "
                        f"(history {ladder.history})")
    else:
        print(f"OK ladder: {' -> '.join(r.value for r, _ in ladder.history)}"
              f" survives in {current.duration:.0f} ns")


def check_mini_campaign(failures):
    result = chaos.run(seeds=1)
    if result.survival_rate < 1.0:
        failures.append(f"mini campaign survival "
                        f"{result.survival_rate:.0%} < 100%")
    elif result.baseline_survival_rate >= 1.0:
        failures.append("no mini-campaign fault killed the no-response "
                        "baseline; the campaign is not stressing anything")
    elif result.invariant_violations or result.watchdog_hangs:
        failures.append(
            f"mini campaign: {result.invariant_violations} invariant "
            f"violations, {result.watchdog_hangs} watchdog hangs")
    else:
        print(f"OK campaign: {result.n_scenarios} scenarios, resilient "
              f"{result.survival_rate:.0%} vs baseline "
              f"{result.baseline_survival_rate:.0%}, "
              f"MTTR {result.mttr_ns():.0f} ns")


def main() -> int:
    failures = []
    check_identity(failures)
    check_drop_recovery(failures)
    check_ladder(failures)
    check_mini_campaign(failures)
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("smoke-chaos passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
