#!/usr/bin/env python
"""Smoke test for the telemetry layer (the `make smoke-obs` target).

The metrics registry's contract is *observational transparency*:
attaching one must never change what the simulator computes.  Two
end-to-end checks on a cheap TP=4 case:

1. **Identical results** — ``simulate_case`` with an ``obs_sink`` returns
   bit-identical times and traffic to a plain run, and the sink holds a
   populated registry per simulated configuration;
2. **Identical event counts** — a fused GEMM-RS run fires exactly the
   same number of engine events with and without a registry attached
   (recording is passive: it schedules nothing).

With ``--report FILE`` / ``--trace FILE`` it additionally writes an
overlap-profile JSON and a merged span+counter Perfetto trace — the CI
bench-smoke job uploads both as artifacts.

Exit status 0 on success; prints a diagnosis and exits 1 otherwise.
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.trace import TraceRecorder              # noqa: E402
from repro.config import table1_system                      # noqa: E402
from repro.experiments import sublayer_sweep                # noqa: E402
from repro.experiments.common import _fresh_topology, scaled_shape  # noqa: E402
from repro.experiments.profile import run as run_profile    # noqa: E402
from repro.experiments.profile import write_report          # noqa: E402
from repro.models import zoo                                # noqa: E402
from repro.obs import MetricsRegistry                       # noqa: E402
from repro.t3.fusion import FusedGEMMRS                     # noqa: E402


def case():
    return zoo.t_nlg().sublayer("OP", 4)


def simulate(obs_sink=None):
    return sublayer_sweep.simulate_case(
        case(), sublayer_sweep.FAST_SCALE, table1_system(n_gpus=4),
        ["Sequential", "T3-MCA"], obs_sink=obs_sink)


def fused_run(with_obs: bool, with_trace: bool = False):
    """One fused GEMM-RS run; returns (env, result, registry, trace)."""
    sub = case()
    system = table1_system(n_gpus=sub.tp)
    tiles_n = max(1, sub.gemm.n // system.gemm.macro_tile_n)
    rows_needed = -(-sub.tp // tiles_n)  # ceil
    shape = scaled_shape(sub.gemm, sublayer_sweep.FAST_SCALE,
                         min_m=rows_needed * system.gemm.macro_tile_m)
    registry = MetricsRegistry() if with_obs else None
    env, topo = _fresh_topology(system, "mca", obs=registry)
    trace = None
    if with_trace:
        trace = TraceRecorder()
        env.trace = trace
    result = FusedGEMMRS(topo, shape, calibrate_mca=True).run()
    return env, result, registry, trace


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", default=None, metavar="FILE",
                        help="also write an overlap-profile JSON")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="also write a merged span+counter trace")
    args = parser.parse_args()
    failures = []

    plain = simulate()
    sink = {}
    observed = simulate(obs_sink=sink)
    if observed.times != plain.times or observed.traffic != plain.traffic:
        failures.append("obs registry changed simulation results: "
                        f"{observed.times} vs {plain.times}")
    elif sorted(sink) != ["Sequential", "T3-MCA"]:
        failures.append(f"obs sink holds {sorted(sink)}, expected one "
                        "registry per simulated configuration")
    elif any(len(reg) == 0 for reg in sink.values()):
        failures.append("an obs registry collected no scopes")
    else:
        print(f"OK transparency: identical results {plain.times}; "
              f"registries hold "
              f"{sorted(sink['T3-MCA'].components())}")

    env_off, result_off, _, _ = fused_run(with_obs=False)
    env_on, result_on, registry, _ = fused_run(with_obs=True)
    if env_off.events_fired != env_on.events_fired:
        failures.append(
            "obs registry changed the engine event count: "
            f"{env_on.events_fired} vs {env_off.events_fired}")
    elif result_off.duration != result_on.duration:
        failures.append(
            "obs registry changed the fused run duration: "
            f"{result_on.duration} vs {result_off.duration}")
    else:
        print(f"OK passivity: {env_off.events_fired} events and "
              f"{result_off.duration:.0f} ns with and without telemetry")

    if args.report and not failures:
        report = run_profile(fast=True, case_filter="tnlgop",
                             cases=[case()])
        path = write_report(report, args.report)
        print(f"OK report: {path}")

    if args.trace and not failures:
        _, _, registry, trace = fused_run(with_obs=True, with_trace=True)
        target = pathlib.Path(args.trace)
        target.parent.mkdir(parents=True, exist_ok=True)
        trace.save(str(target), registry=registry)
        print(f"OK trace: {target} ({len(trace)} spans + counter tracks)")

    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("smoke-obs passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
