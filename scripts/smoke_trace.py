#!/usr/bin/env python
"""Smoke test for the trace layer (the `make smoke-trace` target).

The trace-intelligence contract is *post-hoc fidelity*: querying a saved
trace must reproduce exactly what the live observability stack measured
on the same run.  Five end-to-end checks on a cheap fused TP=4 run:

1. **Consistency** — the overlap decomposition computed post-hoc from a
   saved trace file equals the live ``obs.profiler.decompose`` numbers
   bit-for-bit (compute/comm/hidden/exposed; no tolerance), and both
   stage attributions match dict-for-dict;
2. **Byte determinism** — saving the same recorder twice produces
   byte-identical files;
3. **Round-trip** — ``TraceRecorder.load`` returns a recorder whose
   re-save is byte-identical, and ``TraceQuery.from_file`` sees the same
   span population as ``TraceQuery.from_recorder``;
4. **Headless timeline** — ``render_timeline`` produces a non-empty
   fixed-width render without a terminal (import/layout regression net
   for the TUI);
5. **CLI** — ``runner trace`` exits 0 on the saved file and emits valid
   pass JSON.

Exit status 0 on success; prints a diagnosis and exits 1 otherwise.
"""

import io
import json
import pathlib
import sys
import tempfile
from contextlib import redirect_stdout

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.trace import TraceRecorder              # noqa: E402
from repro.config import table1_system                      # noqa: E402
from repro.experiments import sublayer_sweep                # noqa: E402
from repro.experiments.common import _fresh_topology, scaled_shape  # noqa: E402
from repro.models import zoo                                # noqa: E402
from repro.obs import MetricsRegistry                       # noqa: E402
from repro.obs import profiler                              # noqa: E402
from repro.t3.fusion import FusedGEMMRS                     # noqa: E402
from repro.trace import (                                   # noqa: E402
    TraceQuery,
    attribute_plan_stages_query,
    attribute_stages_query,
    decompose_query,
    render_timeline,
)
from repro.trace.cli import main as trace_cli               # noqa: E402


def fused_run():
    """One fused GEMM-RS run with registry + decomposition-grade trace."""
    sub = zoo.t_nlg().sublayer("OP", 4)
    system = table1_system(n_gpus=sub.tp)
    tiles_n = max(1, sub.gemm.n // system.gemm.macro_tile_n)
    rows_needed = -(-sub.tp // tiles_n)  # ceil
    shape = scaled_shape(sub.gemm, sublayer_sweep.FAST_SCALE,
                         min_m=rows_needed * system.gemm.macro_tile_m)
    registry = MetricsRegistry()
    env, topo = _fresh_topology(system, "mca", obs=registry)
    trace = TraceRecorder(record_dram=True)
    env.trace = trace
    FusedGEMMRS(topo, shape, calibrate_mca=True).run()
    return registry, trace


def check_consistency(registry, trace, path, failures):
    live = profiler.decompose(registry)
    query = TraceQuery.from_file(path)
    posthoc = decompose_query(query)
    fields = ("compute_ns", "comm_ns", "hidden_ns", "exposed_ns")
    mismatched = [f for f in fields
                  if getattr(live, f) != getattr(posthoc, f)]
    if mismatched:
        for f in mismatched:
            failures.append(
                f"post-hoc {f} diverges from live profiler: "
                f"{getattr(posthoc, f)!r} != {getattr(live, f)!r}")
        return None
    live_stages = [s.__dict__ for s in profiler.attribute_stages(registry)]
    post_stages = [s.__dict__ for s in attribute_stages_query(query)]
    if live_stages != post_stages:
        failures.append("post-hoc GEMM-stage attribution diverges from "
                        f"live: {post_stages} != {live_stages}")
        return None
    live_plan = [s.__dict__
                 for s in profiler.attribute_plan_stages(registry)]
    post_plan = [s.__dict__ for s in attribute_plan_stages_query(query)]
    if live_plan != post_plan:
        failures.append("post-hoc plan-stage attribution diverges from "
                        f"live: {post_plan} != {live_plan}")
        return None
    print(f"OK consistency: live == post-hoc exactly "
          f"(compute {live.compute_ns:.0f} ns, comm {live.comm_ns:.0f} ns, "
          f"hidden {live.hidden_ns:.0f} ns, exposed {live.exposed_ns:.0f} "
          f"ns; {len(live_stages)} GEMM stages, {len(live_plan)} plan "
          "phases)")
    return query


def check_determinism(trace, registry, path, workdir, failures):
    again = workdir / "again.trace.json"
    trace.save(str(again), registry=registry)
    first = pathlib.Path(path).read_bytes()
    second = again.read_bytes()
    if first != second:
        failures.append("saving the same recorder twice produced "
                        f"different bytes ({len(first)} vs {len(second)})")
        return
    print(f"OK determinism: save twice -> byte-identical "
          f"({len(first)} bytes)")


def check_round_trip(trace, registry, path, workdir, failures):
    loaded = TraceRecorder.load(path)
    resaved = workdir / "resaved.trace.json"
    loaded.save(str(resaved), registry=registry)
    if resaved.read_bytes() != pathlib.Path(path).read_bytes():
        failures.append("load -> save round-trip is not byte-identical")
        return
    live = TraceQuery.from_recorder(trace, registry=registry)
    from_file = TraceQuery.from_file(path)
    if len(live) != len(from_file):
        failures.append(f"from_recorder sees {len(live)} spans but "
                        f"from_file sees {len(from_file)}")
        return
    print(f"OK round-trip: load/save byte-identical; recorder and file "
          f"queries both hold {len(live)} spans")


def check_timeline(query, failures):
    text = render_timeline(query, width=100)
    lines = text.splitlines()
    if len(lines) < 3 or not any("%" in line for line in lines):
        failures.append("headless timeline render looks empty:\n" + text)
        return
    print(f"OK timeline: headless render, {len(lines)} lines x "
          "100 columns")


def check_cli(path, workdir, failures):
    report = workdir / "report.json"
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        status = trace_cli([str(path), "--pass", "decomposition",
                            "--pass", "critical-path",
                            "--json", str(report)])
    if status != 0:
        failures.append(f"trace CLI exited {status}:\n{buffer.getvalue()}")
        return
    payload = json.loads(report.read_text())
    names = [entry["pass"] for entry in payload["passes"]]
    if names != ["decomposition", "critical-path"]:
        failures.append(f"trace CLI JSON holds passes {names}")
        return
    print(f"OK cli: runner trace exit 0, JSON report with "
          f"{len(names)} passes")


def main() -> int:
    failures = []
    registry, trace = fused_run()
    with tempfile.TemporaryDirectory() as tmp:
        workdir = pathlib.Path(tmp)
        path = workdir / "fused.trace.json"
        trace.save(str(path), registry=registry)

        query = check_consistency(registry, trace, str(path), failures)
        check_determinism(trace, registry, str(path), workdir, failures)
        check_round_trip(trace, registry, str(path), workdir, failures)
        if query is not None:
            check_timeline(query, failures)
        check_cli(path, workdir, failures)

    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("smoke-trace passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
