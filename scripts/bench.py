#!/usr/bin/env python
"""Capture (or validate) a benchmark trajectory point.

Simulates a small set of sub-layer cases with telemetry attached and
records, per case: host wall-clock, speedups over Sequential, and the
overlap efficiency (fraction of communication hidden under compute) of
every simulated configuration — plus an aggregate ``cases_per_second``
throughput metric (schema v2), the resilience campaign's survival
rate / MTTR (schema v3), the overlap-policy study's static-vs-adaptive
exposed-communication comparison (schema v4), and — schema v5 — the
bare-vs-profiled throughput split plus the calibrated surrogate's
triage accuracy (training fit and audit-slice error), so robustness,
policy, throughput and surrogate regressions all surface in the bench
trajectory just like simulated-speedup ones.  The payload follows the
schema in
:mod:`repro.obs.bench` and lands in ``results/BENCH_0003.json`` by
default — the checked-in trajectory point CI validates on every push.

Usage::

    python scripts/bench.py                 # fast case set -> results/BENCH_0003.json
    python scripts/bench.py --smoke         # one cheap TP=4 case (CI)
    python scripts/bench.py --out /tmp/b.json
    python scripts/bench.py --check results/BENCH_0003.json

Exit status 0 on success; ``--check`` exits 1 listing every schema
violation.  Simulated values are machine-independent (the simulator is
deterministic); wall-clock numbers are host-specific by design.
"""

import argparse
import datetime
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import table1_system                      # noqa: E402
from repro.experiments import adaptive as adaptive_study    # noqa: E402
from repro.experiments import chaos as chaos_campaign       # noqa: E402
from repro.experiments import sublayer_sweep                # noqa: E402
from repro.experiments.profile import filter_cases          # noqa: E402
from repro.models import zoo                                # noqa: E402
from repro.obs import bench                                 # noqa: E402
from repro.obs.profiler import PROFILED_CONFIGS, profile_case  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "results" / "BENCH_0003.json"


def smoke_cases():
    """One cheap TP=4 case — seconds, not minutes (the CI bench point)."""
    return [zoo.t_nlg().sublayer("OP", 4)]


def fast_cases():
    """The FC-2 column of the sweep grid (the checked-in bench point)."""
    return filter_cases(sublayer_sweep.default_cases(), "fc2")


def surrogate_grid(mode: str):
    """The synthetic grid the bench's triaged sweep scores.

    Axes are kept small enough that the train + frontier + audit
    simulations stay cheap; the checked-in demo scale lives in
    ``runner surrogate`` (10k cases), not here.
    """
    from repro.surrogate.grid import synthetic_cases

    if mode == "smoke":
        return synthetic_cases(n=60, seed=0, hidden=(1024, 2048),
                               seq_len=(512,), batch=(1, 2, 4), tp=(4, 8))
    return synthetic_cases(n=400, seed=0, hidden=(1024, 2048, 4096),
                           seq_len=(512, 1024), batch=(1, 4, 16),
                           tp=(4, 8))


def capture(mode: str) -> dict:
    cases = smoke_cases() if mode == "smoke" else fast_cases()
    # Bare engine throughput first: the same cases, no telemetry, no
    # profiling — what the event core alone sustains.
    pure_started = time.time()
    for sub in cases:
        sublayer_sweep.simulate_case(
            sub, sublayer_sweep.FAST_SCALE, table1_system(n_gpus=sub.tp),
            list(PROFILED_CONFIGS))
    pure_elapsed = time.time() - pure_started
    pure_cases_per_second = len(cases) / pure_elapsed \
        if pure_elapsed > 0 else 0.0
    print(f"  pure-sim throughput: {pure_cases_per_second:.3f} cases/s "
          f"({len(cases)} case(s) in {pure_elapsed:.2f}s)")
    started = time.time()
    experiments = []
    for sub in cases:
        case_started = time.time()
        registries = {}
        suite = sublayer_sweep.simulate_case(
            sub, sublayer_sweep.FAST_SCALE, table1_system(n_gpus=sub.tp),
            list(PROFILED_CONFIGS), obs_sink=registries)
        profile = profile_case(suite.label, registries, times=suite.times)
        experiments.append({
            "case": suite.label,
            "wall_clock_s": round(time.time() - case_started, 3),
            "speedups": {
                name: round(suite.speedup(name), 6)
                for name in PROFILED_CONFIGS if name != "Sequential"
            },
            "overlap_efficiency": {
                name: round(
                    profile.configs[name].breakdown.overlap_efficiency, 6)
                for name in profile.configs
            },
            "hidden_comm_ns": {
                name: round(profile.configs[name].breakdown.hidden_ns, 1)
                for name in profile.configs
            },
        })
        print(f"  {suite.label}: "
              f"{experiments[-1]['wall_clock_s']:.2f}s, speedups "
              f"{experiments[-1]['speedups']}")
    elapsed = time.time() - started
    cases_per_second = len(experiments) / elapsed if elapsed > 0 else 0.0
    print(f"  throughput: {cases_per_second:.3f} cases/s "
          f"({len(experiments)} case(s) in {elapsed:.2f}s)")
    # Robustness metrics: a seeded chaos slice (one seed per campaign
    # cell in smoke mode, the full fast campaign otherwise).
    chaos_started = time.time()
    campaign = chaos_campaign.run(seeds=1 if mode == "smoke" else None,
                                  fast=True)
    chaos_summary = campaign.summary()
    print(f"  chaos: {chaos_summary['scenarios']} scenarios, survival "
          f"{chaos_summary['survival_rate']:.0%} vs baseline "
          f"{chaos_summary['baseline_survival_rate']:.0%} "
          f"({time.time() - chaos_started:.2f}s)")
    # Overlap-policy metrics: the cheap static-vs-adaptive probe on the
    # faulty suites (see repro.experiments.adaptive).
    policy_started = time.time()
    policy_block = adaptive_study.quick_policy_point(fast=True).to_dict()
    print(f"  policy: adaptive "
          f"{'wins' if policy_block['adaptive_wins'] else 'DOES NOT WIN'}"
          f", geomean exposed-comm reduction "
          f"{policy_block['geomean_exposed_reduction']:.2%} "
          f"({time.time() - policy_started:.2f}s)")
    # Surrogate accuracy: a small triaged sweep; its audit-slice error is
    # the bench's measurement of the analytic shortcut.
    surrogate_started = time.time()
    triage = sublayer_sweep.run_sweep(
        cases=surrogate_grid(mode), triage="surrogate",
        triage_options=dict(frontier=4, min_audit=4, audit_fraction=0.0,
                            seed=0))
    surrogate_block = {
        "n_scored": triage.n_scored,
        "n_simulated": triage.n_simulated,
        "simulated_fraction": round(triage.simulated_fraction, 6),
        "train_mae_rel": round(triage.train_stats["mae_rel"], 6),
        "audit_mae_rel": round(triage.audit_stats["mae_rel"], 6),
        "audit_geomean_rel": round(triage.audit_stats["geomean_rel"], 6),
        "audit_n": int(triage.audit_stats["n"]),
    }
    print(f"  surrogate: {triage.n_scored} scored / "
          f"{triage.n_simulated} simulated, audit geomean rel err "
          f"{surrogate_block['audit_geomean_rel']:.2%} "
          f"({time.time() - surrogate_started:.2f}s)")
    return bench.build_payload(
        mode=mode,
        captured_at=datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        host={
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        wall_clock_s=round(elapsed, 3),
        cases_per_second=round(cases_per_second, 4),
        throughput={
            "pure_sim_cases_per_second": round(pure_cases_per_second, 4),
            "profiled_cases_per_second": round(cases_per_second, 4),
        },
        chaos=chaos_summary,
        policy=policy_block,
        surrogate=surrogate_block,
        experiments=experiments,
    )


def check(path: pathlib.Path) -> int:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL {path}: unreadable ({exc})")
        return 1
    errors = bench.validate(payload)
    if errors:
        print(f"FAIL {path}: {len(errors)} schema violation(s)")
        for error in errors:
            print(f"  - {error}")
        return 1
    n = len(payload["experiments"])
    chaos_block = payload["chaos"]
    policy_block = payload["policy"]
    surrogate_block = payload["surrogate"]
    print(f"OK {path}: schema v{payload['schema_version']}, "
          f"mode={payload['mode']}, {n} experiment(s), "
          f"{payload['cases_per_second']} cases/s profiled "
          f"({payload['throughput']['pure_sim_cases_per_second']} bare), "
          f"chaos survival {chaos_block['survival_rate']:.0%} over "
          f"{chaos_block['scenarios']} scenarios, adaptive policy "
          f"{'wins' if policy_block['adaptive_wins'] else 'does not win'}, "
          f"surrogate audit geomean rel err "
          f"{surrogate_block['audit_geomean_rel']:.2%}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="capture or validate a bench trajectory point")
    parser.add_argument("--smoke", action="store_true",
                        help="one cheap TP=4 case instead of the FC-2 set")
    parser.add_argument("--out", default=str(DEFAULT_OUT), metavar="FILE",
                        help=f"output path (default {DEFAULT_OUT})")
    parser.add_argument("--check", default=None, metavar="FILE",
                        help="validate an existing bench file and exit")
    args = parser.parse_args()

    if args.check is not None:
        return check(pathlib.Path(args.check))

    mode = "smoke" if args.smoke else "fast"
    print(f"[bench: capturing {mode} point]")
    payload = capture(mode)
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench point written to {out} "
          f"({payload['wall_clock_s']:.1f}s wall clock)]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
