#!/usr/bin/env python
"""Capture (or validate) a benchmark trajectory point.

Simulates a small set of sub-layer cases with telemetry attached and
records, per case: host wall-clock, speedups over Sequential, and the
overlap efficiency (fraction of communication hidden under compute) of
every simulated configuration — plus an aggregate ``cases_per_second``
throughput metric (schema v2), the resilience campaign's survival
rate / MTTR (schema v3), and the overlap-policy study's
static-vs-adaptive exposed-communication comparison (schema v4), so
robustness and policy regressions surface in the bench trajectory just
like performance ones.  The payload follows the schema in
:mod:`repro.obs.bench` and lands in ``results/BENCH_0003.json`` by
default — the checked-in trajectory point CI validates on every push.

Usage::

    python scripts/bench.py                 # fast case set -> results/BENCH_0003.json
    python scripts/bench.py --smoke         # one cheap TP=4 case (CI)
    python scripts/bench.py --out /tmp/b.json
    python scripts/bench.py --check results/BENCH_0003.json

Exit status 0 on success; ``--check`` exits 1 listing every schema
violation.  Simulated values are machine-independent (the simulator is
deterministic); wall-clock numbers are host-specific by design.
"""

import argparse
import datetime
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import table1_system                      # noqa: E402
from repro.experiments import adaptive as adaptive_study    # noqa: E402
from repro.experiments import chaos as chaos_campaign       # noqa: E402
from repro.experiments import sublayer_sweep                # noqa: E402
from repro.experiments.profile import filter_cases          # noqa: E402
from repro.models import zoo                                # noqa: E402
from repro.obs import bench                                 # noqa: E402
from repro.obs.profiler import PROFILED_CONFIGS, profile_case  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "results" / "BENCH_0003.json"


def smoke_cases():
    """One cheap TP=4 case — seconds, not minutes (the CI bench point)."""
    return [zoo.t_nlg().sublayer("OP", 4)]


def fast_cases():
    """The FC-2 column of the sweep grid (the checked-in bench point)."""
    return filter_cases(sublayer_sweep.default_cases(), "fc2")


def capture(mode: str) -> dict:
    cases = smoke_cases() if mode == "smoke" else fast_cases()
    started = time.time()
    experiments = []
    for sub in cases:
        case_started = time.time()
        registries = {}
        suite = sublayer_sweep.simulate_case(
            sub, sublayer_sweep.FAST_SCALE, table1_system(n_gpus=sub.tp),
            list(PROFILED_CONFIGS), obs_sink=registries)
        profile = profile_case(suite.label, registries, times=suite.times)
        experiments.append({
            "case": suite.label,
            "wall_clock_s": round(time.time() - case_started, 3),
            "speedups": {
                name: round(suite.speedup(name), 6)
                for name in PROFILED_CONFIGS if name != "Sequential"
            },
            "overlap_efficiency": {
                name: round(
                    profile.configs[name].breakdown.overlap_efficiency, 6)
                for name in profile.configs
            },
            "hidden_comm_ns": {
                name: round(profile.configs[name].breakdown.hidden_ns, 1)
                for name in profile.configs
            },
        })
        print(f"  {suite.label}: "
              f"{experiments[-1]['wall_clock_s']:.2f}s, speedups "
              f"{experiments[-1]['speedups']}")
    elapsed = time.time() - started
    cases_per_second = len(experiments) / elapsed if elapsed > 0 else 0.0
    print(f"  throughput: {cases_per_second:.3f} cases/s "
          f"({len(experiments)} case(s) in {elapsed:.2f}s)")
    # Robustness metrics: a seeded chaos slice (one seed per campaign
    # cell in smoke mode, the full fast campaign otherwise).
    chaos_started = time.time()
    campaign = chaos_campaign.run(seeds=1 if mode == "smoke" else None,
                                  fast=True)
    chaos_summary = campaign.summary()
    print(f"  chaos: {chaos_summary['scenarios']} scenarios, survival "
          f"{chaos_summary['survival_rate']:.0%} vs baseline "
          f"{chaos_summary['baseline_survival_rate']:.0%} "
          f"({time.time() - chaos_started:.2f}s)")
    # Overlap-policy metrics: the cheap static-vs-adaptive probe on the
    # faulty suites (see repro.experiments.adaptive).
    policy_started = time.time()
    policy_block = adaptive_study.quick_policy_point(fast=True).to_dict()
    print(f"  policy: adaptive "
          f"{'wins' if policy_block['adaptive_wins'] else 'DOES NOT WIN'}"
          f", geomean exposed-comm reduction "
          f"{policy_block['geomean_exposed_reduction']:.2%} "
          f"({time.time() - policy_started:.2f}s)")
    return bench.build_payload(
        mode=mode,
        captured_at=datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        host={
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        wall_clock_s=round(elapsed, 3),
        cases_per_second=round(cases_per_second, 4),
        chaos=chaos_summary,
        policy=policy_block,
        experiments=experiments,
    )


def check(path: pathlib.Path) -> int:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL {path}: unreadable ({exc})")
        return 1
    errors = bench.validate(payload)
    if errors:
        print(f"FAIL {path}: {len(errors)} schema violation(s)")
        for error in errors:
            print(f"  - {error}")
        return 1
    n = len(payload["experiments"])
    chaos_block = payload["chaos"]
    policy_block = payload["policy"]
    print(f"OK {path}: schema v{payload['schema_version']}, "
          f"mode={payload['mode']}, {n} experiment(s), "
          f"{payload['cases_per_second']} cases/s, chaos survival "
          f"{chaos_block['survival_rate']:.0%} over "
          f"{chaos_block['scenarios']} scenarios, adaptive policy "
          f"{'wins' if policy_block['adaptive_wins'] else 'does not win'}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="capture or validate a bench trajectory point")
    parser.add_argument("--smoke", action="store_true",
                        help="one cheap TP=4 case instead of the FC-2 set")
    parser.add_argument("--out", default=str(DEFAULT_OUT), metavar="FILE",
                        help=f"output path (default {DEFAULT_OUT})")
    parser.add_argument("--check", default=None, metavar="FILE",
                        help="validate an existing bench file and exit")
    args = parser.parse_args()

    if args.check is not None:
        return check(pathlib.Path(args.check))

    mode = "smoke" if args.smoke else "fast"
    print(f"[bench: capturing {mode} point]")
    payload = capture(mode)
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench point written to {out} "
          f"({payload['wall_clock_s']:.1f}s wall clock)]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
