"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure in fast mode (token-
scaled shapes with the paper's compute:communication balance) and prints
the rendered rows, so ``pytest benchmarks/ --benchmark-only -s`` shows the
reproduction next to its timing.  Run with ``REPRO_FULL=1`` for
paper-scale shapes.
"""

import os

import pytest


@pytest.fixture(scope="session")
def fast_mode() -> bool:
    return os.environ.get("REPRO_FULL", "") != "1"


@pytest.fixture()
def run_once(benchmark):
    """pedantic single-shot wrapper: these are experiments, not microbenches."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
