"""Table 2 — render the model zoo and check parameter counts."""

from repro.experiments import tables
from repro.models import zoo


def test_table2_models(run_once):
    result = run_once(tables.run_table2)
    print("\n" + result.render())
    assert len(result.rows) == len(zoo.all_models())
    # Advertised parameter scales (Section 1 / Table 2).
    assert 1.5e11 < zoo.gpt3().n_parameters < 2.2e11
    assert 4.0e11 < zoo.palm().n_parameters < 6.5e11
