"""Figure 19 — end-to-end model speedups from sub-layer gains.

Paper: training up to 9% (T3) / 12% (T3-MCA); prompt inference up to 12% /
15%; inference benefits more than training.
"""

from repro.experiments import figure19


def test_figure19_end_to_end(run_once, fast_mode):
    result = run_once(figure19.run, fast=fast_mode)
    print("\n" + result.render())
    for phase in ("training", "prompt"):
        best = result.max_speedup("T3-MCA", phase)
        assert 1.03 < best < 1.25
    # Every row shows a real end-to-end gain, and MCA >= T3.
    for row in result.rows:
        assert row.t3_speedup > 1.0
        assert row.t3_mca_speedup >= row.t3_speedup * 0.999
