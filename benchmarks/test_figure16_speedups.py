"""Figure 16 — sub-layer speedups of T3 / T3-MCA / ideals over Sequential.

Paper headline: T3 20% geomean (max 39%); T3-MCA 30% geomean (max 47%);
Ideal-GEMM-RS-Overlap 35% geomean (max 50%); Ideal-RS+NMC adds up to 4%.
"""

from repro.experiments import figure16


def test_figure16_speedups(run_once, fast_mode):
    result = run_once(figure16.run, fast=fast_mode)
    print("\n" + result.render())
    table = result.table

    # Geomeans in the paper's bands (wide enough for fast-mode scaling).
    assert 1.10 < table.geomean("T3") < 1.40
    assert 1.15 < table.geomean("T3-MCA") < 1.45
    assert 1.25 < table.geomean("Ideal-GEMM-RS-Overlap") < 1.50
    assert table.max("T3-MCA") > 1.30  # paper max: 1.47

    # Structural orderings.
    assert table.geomean("T3-MCA") >= table.geomean("T3") * 0.999
    assert table.geomean("Ideal-GEMM-RS-Overlap") >= table.geomean("T3-MCA") * 0.98
    assert table.geomean("Ideal-RS+NMC") >= \
        table.geomean("Ideal-GEMM-RS-Overlap")

    # T3-MCA geomean is within ~10% of the contention-free ideal
    # (paper: 5%).
    assert table.geomean("T3-MCA") > \
        table.geomean("Ideal-GEMM-RS-Overlap") - 0.12
