"""Figure 15 — sub-layer runtime split between GEMM, RS and AG.

Paper: proportions vary per layer/TP; FC layers are GEMM-heavy, OP is
communication-heavy (it is the smallest sliced GEMM).
"""

from repro.experiments import figure15


def test_figure15_distribution(run_once, fast_mode):
    result = run_once(figure15.run, fast=fast_mode)
    print("\n" + result.render())
    assert len(result.rows) == 16  # 2 models x 2 TPs x 4 sub-layers
    by_case = {r.case: r for r in result.rows}
    for model in ("Mega-GPT-2", "T-NLG"):
        for tp in (8, 16):
            op = by_case[f"{model}/OP/TP{tp}"]
            fc2 = by_case[f"{model}/FC-2/TP{tp}"]
            # OP's GEMM share is the smallest of the four sub-layers.
            assert op.gemm_fraction < fc2.gemm_fraction
    # Comm (RS+AG) share grows with TP for the same sub-layer: the GEMM
    # shrinks with K/tp while the AR payload is constant.
    for model in ("Mega-GPT-2", "T-NLG"):
        low = by_case[f"{model}/FC-2/TP8"]
        high = by_case[f"{model}/FC-2/TP16"]
        assert high.gemm_fraction < low.gemm_fraction
