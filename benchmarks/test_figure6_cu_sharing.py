"""Figure 6 — CU sharing between GEMM and AR erodes overlap potential.

Paper: ideal overlap potential 1.67x geomean; allocating AR only 8 CUs
slows it ~41% and drops potential to 1.18x; a 64-16 split lands at 1.49x.
"""

from repro.experiments import figure6


def test_figure6_cu_sharing(run_once, fast_mode):
    result = run_once(figure6.run, fast=fast_mode)
    print("\n" + result.render())
    g_ideal = result.geomean_speedup("ideal")
    g_6416 = result.geomean_speedup("64-16")
    g_728 = result.geomean_speedup("72-8")
    # Ordering and rough magnitudes of the paper's bars.
    assert g_ideal > g_6416 > g_728 > 1.0
    assert 1.3 < g_ideal < 1.9
    assert g_728 < g_ideal - 0.15
