"""Figure 4 — iteration-time share of sliced-GEMM->AR across models.

Paper: communication is up to 34% (Mega-GPT-2) / 43% (T-NLG) of training
and prompt time; up to 46% for very large models and 44% for futuristic
1T/10T models at TP=64.
"""

from repro.experiments import figure4


def test_figure4_breakdown(run_once, fast_mode):
    result = run_once(figure4.run, fast=fast_mode)
    print("\n" + result.render())
    assert 0.25 < result.max_comm_fraction("Mega-GPT-2") < 0.45
    assert 0.25 < result.max_comm_fraction("T-NLG") < 0.50
    assert 0.20 < result.max_comm_fraction("MT-NLG") < 0.55
    assert 0.25 < result.max_comm_fraction("Future-1T") < 0.55
    # The sliced share exceeds the pure-communication share everywhere.
    assert all(r.sliced_fraction > r.comm_fraction for r in result.rows)
