"""Benchmarks for the Section 7 extension studies."""

from repro.experiments import extensions


def test_generation_phase(run_once, fast_mode):
    """Section 7.3: decode-phase ARs are latency-bound but still on the
    critical path; hiding them wins a bounded amount."""
    result = run_once(extensions.run_generation, fast=fast_mode)
    print("\n" + result.render())
    for row in result.rows:
        assert 0.0 < row.comm_fraction < 0.6
        assert 1.0 < row.hidden_speedup < 1.8
    # Generation comm share grows with TP (more latency-bound steps).
    tnlg = {r.tp: r for r in result.rows if r.model == "T-NLG"}
    assert tnlg[16].comm_fraction > tnlg[8].comm_fraction


def test_lower_precision(run_once, fast_mode):
    """Section 7.5: FP8 shrinks compute ~4x but communication only 2x, so
    overlap helps more than at FP16."""
    result = run_once(extensions.run_precision, fast=fast_mode)
    print("\n" + result.render())
    fp16 = result.row("fp16")
    fp8 = result.row("fp8")
    assert fp8.gemm_us < fp16.gemm_us / 2.5
    assert fp8.rs_us > fp16.rs_us / 2.5  # comm shrinks only linearly
    # Compute:comm ratio dropped -> the collective dominates and ideal
    # overlap saves a larger fraction.
    assert fp8.ideal_speedup != fp16.ideal_speedup


def test_nmc_following_ops(run_once, fast_mode):
    """Section 7.6: running post-AR element-wise operators near memory on
    the reduced sub-array adds a few percent end to end."""
    result = run_once(extensions.run_following_ops, fast=fast_mode)
    print("\n" + result.render())
    for row in result.rows:
        assert 1.005 < row.speedup < 1.2


def test_consumer_side_fusion(run_once, fast_mode):
    """Section 7.2: gating consumer-GEMM workgroups on all-gather chunk
    arrival hides the AG behind the compute."""
    result = run_once(extensions.run_consumer_fusion, fast=fast_mode)
    print("\n" + result.render())
    for row in result.rows:
        assert row.speedup > 1.1
