"""Figure 17 — DRAM traffic timelines: baseline GEMM vs T3 overlap.

Paper: the baseline GEMM alternates read phases with bursty write phases;
under T3 the RS reads/updates share DRAM and stall GEMM reads, slowing
the GEMM (the motivation for MCA).
"""

from repro.experiments import figure17


def test_figure17_traffic_timeline(run_once, fast_mode):
    result = run_once(figure17.run, fast=fast_mode)
    print("\n" + result.render())
    # T3 overlap stretches the producer GEMM (contention), but bounded.
    assert 1.0 <= result.gemm_slowdown < 1.5
    # Bursty writes: peak write bin well above the mean.
    writes = result.baseline_series["GEMM writes"]
    mean = sum(writes.bytes_per_bin) / max(1, len(writes.bytes_per_bin))
    assert writes.peak > 2 * mean
    # The T3 run carries all four traffic classes.
    for key in ("GEMM reads", "GEMM updates", "RS reads", "RS updates"):
        assert result.t3_series[key].total > 0
