"""Table 3 — qualitative comparison with prior approaches."""

from repro.experiments import tables


def test_table3_comparison(run_once):
    result = run_once(tables.run_table3)
    print("\n" + result.render())
    assert result.dominates("T3-MCA")
    # Every prior approach misses at least one feature.
    assert sum(all(flags) for flags in result.features.values()) == 1
