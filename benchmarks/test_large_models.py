"""Section 6.4 — sub-layer speedups for ~0.2-0.5T-parameter models.

Paper: GPT-3 / PALM / MT-NLG at TP=32 see 29% geomean (max 35%) sub-layer
speedups with T3-MCA.
"""

from repro.experiments import figure16


def test_large_model_speedups(run_once, fast_mode):
    result = run_once(figure16.run, fast=fast_mode, large=True)
    print("\n" + result.render())
    table = result.table
    assert len(table.rows) == 12  # 3 models x 4 sub-layers
    assert 1.08 < table.geomean("T3-MCA") < 1.45
    assert table.max("T3-MCA") > 1.2
    assert table.geomean("Ideal-GEMM-RS-Overlap") >= \
        table.geomean("T3-MCA") * 0.98
