"""Table 1 — render and sanity-check the simulated system configuration."""

from repro.experiments import tables


def test_table1_config(run_once):
    result = run_once(tables.run_table1)
    print("\n" + result.render())
    system = result.system
    assert system.compute.n_cus == 80
    assert system.memory.llc_bytes == 16 * 1024 * 1024
    assert system.link.bidirectional_bandwidth == 150.0
    assert system.tracker.n_entries == 256
