"""Ablations over T3's design choices (Sections 4.5, 7.1, 7.4, 7.8).

Each benchmark isolates one knob on the T-NLG FC-2 (TP=8) sub-layer:

* MCA occupancy threshold (5 / 10 / 30 / unlimited),
* staggered vs. unstaggered WG scheduling,
* NMC op-and-store cost (CCDWL factor; ~system-wide atomics at 4x),
* operand-fetch wave count (contention coupling),
* ring vs. direct (fully-connected) reduce-scatter fusion,
* a slow inter-node link (Section 7.8).
"""

import dataclasses

import pytest

from repro.config import MCAConfig, table1_system
from repro.experiments.common import scaled_shape
from repro.gpu.wavefront import GEMMShape
from repro.interconnect.topology import FullyConnectedTopology, RingTopology
from repro.models import zoo
from repro.sim import Environment
from repro.t3.fusion import FusedGEMMRS


def fc2_shape(scale=8):
    return scaled_shape(zoo.t_nlg().sublayer("FC-2", 8).gemm, scale)


def run_fused(system, shape, policy="compute-priority", topo_cls=RingTopology,
              **kwargs):
    env = Environment()
    topo = topo_cls(env, system, policy_name=policy)
    fused = FusedGEMMRS(topo, shape, **kwargs)
    result = fused.run()
    return topo, result


def test_ablation_mca_thresholds(run_once):
    """Stricter occupancy gates protect the GEMM; the unlimited gate
    degenerates to compute-priority."""

    def sweep():
        shape = fc2_shape()
        durations = {}
        for threshold in (5, 10, 30, None):
            base = table1_system(n_gpus=8)
            mca = MCAConfig(occupancy_thresholds=(threshold,),
                            intensity_breakpoints=())
            system = base.replace(mca=mca)
            _topo, result = run_fused(system, shape, policy="mca",
                                      calibrate_mca=True)
            durations[threshold] = result.duration
        return durations

    durations = run_once(sweep)
    print("\nMCA threshold ablation (fused GEMM+RS span, us):")
    for threshold, duration in durations.items():
        print(f"  threshold={str(threshold):>5}: {duration / 1e3:8.1f}us")
    spread = max(durations.values()) / min(durations.values())
    assert spread < 1.3  # all thresholds complete sanely
    assert all(d > 0 for d in durations.values())


def test_ablation_stagger(run_once):
    """Section 4.4: staggered chunk production must never lose to the
    unstaggered schedule (every device producing chunk 0 first)."""

    def sweep():
        shape = fc2_shape()
        system = table1_system(n_gpus=8)
        out = {}
        for stagger in (True, False):
            _topo, result = run_fused(system, shape, stagger=stagger)
            out[stagger] = result.duration
        return out

    durations = run_once(sweep)
    print(f"\nstagger=True:  {durations[True] / 1e3:.1f}us")
    print(f"stagger=False: {durations[False] / 1e3:.1f}us")
    assert durations[True] <= durations[False] * 1.02


def test_ablation_nmc_cost(run_once):
    """Section 7.4: T3 tolerates costlier reduction substrates.  CCDWL 1x
    (free updates) -> 2x (NMC) -> 4x (~system-wide atomics)."""

    def sweep():
        shape = fc2_shape()
        out = {}
        for factor in (1.0, 2.0, 4.0):
            base = table1_system(n_gpus=8)
            system = base.replace(memory=dataclasses.replace(
                base.memory, nmc_ccdwl_factor=factor))
            _topo, result = run_fused(system, shape)
            out[factor] = result.duration
        return out

    durations = run_once(sweep)
    print("\nNMC op-and-store cost ablation:")
    for factor, duration in durations.items():
        print(f"  CCDWL={factor:.0f}x: {duration / 1e3:8.1f}us")
    assert durations[1.0] <= durations[2.0] <= durations[4.0] * 1.001
    # Even 4x updates keep the fused span within ~40% of the 1x case.
    assert durations[4.0] < durations[1.0] * 1.4


def test_ablation_fetch_waves(run_once):
    """Tighter fetch/compute coupling exposes more contention."""

    def sweep():
        shape = fc2_shape()
        out = {}
        for waves in (1, 4, 16):
            system = table1_system(n_gpus=8).with_fidelity(
                gemm_waves_per_stage=waves)
            _topo, result = run_fused(system, shape)
            out[waves] = result.duration
        return out

    durations = run_once(sweep)
    print("\nfetch-wave ablation:")
    for waves, duration in durations.items():
        print(f"  waves={waves:>2}: {duration / 1e3:8.1f}us")
    assert all(d > 0 for d in durations.values())


def test_ablation_ring_vs_direct(run_once):
    """Section 7.1: on a fully-connected node, direct-RS eliminates the
    collective's DRAM traffic entirely."""

    def sweep():
        shape = GEMMShape(2048, 1024, 1024)
        system = table1_system(n_gpus=8).with_fidelity(
            quantum_bytes=32 * 1024)
        ring_topo, ring_result = run_fused(system, shape)
        direct_topo, direct_result = run_fused(
            system, shape, topo_cls=FullyConnectedTopology,
            collective="direct-rs")
        return {
            "ring_bytes": ring_topo.gpus[0].mc.total_bytes(),
            "direct_bytes": direct_topo.gpus[0].mc.total_bytes(),
            "ring_us": ring_result.duration / 1e3,
            "direct_us": direct_result.duration / 1e3,
        }

    out = run_once(sweep)
    print(f"\nring-RS fusion:   {out['ring_us']:8.1f}us "
          f"{out['ring_bytes'] / 1e6:7.0f}MB DRAM")
    print(f"direct-RS fusion: {out['direct_us']:8.1f}us "
          f"{out['direct_bytes'] / 1e6:7.0f}MB DRAM")
    assert out["direct_bytes"] < out["ring_bytes"]


def test_ablation_slow_internode_link(run_once):
    """Section 7.8: with a 4x slower link, communication dominates and
    T3's win shrinks to hiding the GEMM — but it still wins."""
    from repro.experiments.common import run_sublayer_suite

    def sweep():
        shape = fc2_shape()
        out = {}
        for name, bw_scale in (("intra-node", 1.0), ("inter-node", 0.25)):
            base = table1_system(n_gpus=8)
            system = base.replace(link=dataclasses.replace(
                base.link, bandwidth=base.link.bandwidth * bw_scale))
            suite = run_sublayer_suite(system, shape,
                                       configs=["Sequential", "T3-MCA"])
            out[name] = suite.speedup("T3-MCA")
        return out

    speedups = run_once(sweep)
    print(f"\nT3-MCA speedup intra-node: {speedups['intra-node']:.3f}x")
    print(f"T3-MCA speedup inter-node: {speedups['inter-node']:.3f}x")
    assert speedups["intra-node"] > speedups["inter-node"] > 1.0
