"""Figure 20 — T3 on future hardware with 2x compute (Section 7.5).

Paper: on compute-dominated FC-2 layers the benefit grows with 2x CUs; on
the small, balanced OP layers exposed communication shrinks it.  In our
calibration the contention-free overlap potential (ideal columns) shows
the same crossover; the simulated FC-2 delta sits at the crossover point
(see EXPERIMENTS.md).
"""

from repro.experiments import figure20


def test_figure20_future_hw(run_once, fast_mode):
    result = run_once(figure20.run, fast=fast_mode)
    print("\n" + result.render())
    # GPT-3's FC-2 sits past the GEMM/RS crossover in our calibration
    # (EXPERIMENTS.md), so the paper's FC-2-gains claim is checked on the
    # compute-heavier PALM / MT-NLG.
    models = {"PALM"} if fast_mode else {"PALM", "MT-NLG"}
    for model in models:
        op = result.row(f"{model}/OP")
        fc2 = result.row(f"{model}/FC-2")
        # OP loses benefit under 2x compute (communication exposed).
        assert op.delta < 0
        # FC-2 retains more of its benefit than OP...
        assert fc2.delta > op.delta
        # ...and its contention-free overlap potential grows (the paper's
        # stated mechanism).
        assert fc2.ideal_delta > op.ideal_delta
        assert fc2.ideal_delta > -0.02
