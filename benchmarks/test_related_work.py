"""Quantitative Table-3 companion: in-switch reduction vs T3-MCA."""

from repro.experiments import related_work


def test_in_switch_comparison(run_once, fast_mode):
    """In-switch hardware halves collective time but leaves it serialized
    (Klenk et al.).  Its advantage is largest on communication-skewed
    layers (OP) and shrinks as the GEMM grows (FC-2) — where T3's
    overlap, which needs no switches at all, catches up."""
    result = run_once(related_work.run, fast=fast_mode)
    print("\n" + result.render())
    by_case = {r.case: r for r in result.rows}
    for model in ("Mega-GPT-2", "T-NLG"):
        op = by_case[f"{model}/OP/TP8"]
        fc2 = by_case[f"{model}/FC-2/TP8"]
        gap_op = op.in_switch_speedup - op.t3_mca_speedup
        gap_fc2 = fc2.in_switch_speedup - fc2.t3_mca_speedup
        assert gap_fc2 < gap_op
    assert result.geomean("t3") > 1.1
