"""Figure 14 — multi-GPU reduce-scatter simulation validation.

Paper: simulated RS on 4 GPUs follows MI210 hardware within 6% geomean
error over 6-192 MB.  Our reference is the closed-form ring model (see
DESIGN.md substitutions).
"""

from repro.experiments import validation


def test_figure14_validation(run_once, fast_mode):
    result = run_once(validation.run, fast=fast_mode)
    print("\n" + result.render())
    assert result.geomean_error < 0.12
    # Error shrinks as fixed overheads amortize with size.
    assert result.points[-1].error <= result.points[0].error
