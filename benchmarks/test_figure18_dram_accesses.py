"""Figure 18 — DRAM access breakdown per sub-layer, Sequential vs T3.

Paper: data movement falls 22% geomean (max 36%); RS reads shrink 2.4x
geomean; GEMM+RS writes ~10%; GEMM reads 1.56x geomean.
"""

from repro.experiments import figure18


def test_figure18_dram_accesses(run_once, fast_mode):
    result = run_once(figure18.run, fast=fast_mode)
    print("\n" + result.render())
    assert 0.10 < result.geomean_total_reduction() < 0.45
    assert result.max_total_reduction() < 0.55
    # RS reads: (2N-1)/(N-2) chunks = 2.33x at N=8, 2.14x at N=16.
    assert 1.9 < result.geomean_rs_read_ratio() < 2.6
    # GEMM reads fall from LLC write-bypass (paper: 1.56x geomean).
    assert 1.0 <= result.geomean_gemm_read_ratio() < 2.5
    # Writes shrink ~1/N (paper: 10% geomean).
    assert 1.02 < result.geomean_write_ratio() < 1.25
